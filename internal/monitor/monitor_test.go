package monitor

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWelfordKnown(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, want %g", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("Std = %g", w.Std())
	}
}

// TestWelfordSnapshotRestore: interrupting the stream at any point and
// restoring from the snapshot must continue bit-identically — the
// property the daemon's checkpoint/resume contract rests on.
func TestWelfordSnapshotRestore(t *testing.T) {
	xs := []float64{3.5, -1.25, 8, 0.125, 42, 1e-9, 7.75}
	var full Welford
	for _, x := range xs {
		full.Add(x)
	}
	for cut := 0; cut <= len(xs); cut++ {
		var a Welford
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		var b Welford
		b.Restore(a.Snapshot())
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		if b.Count() != full.Count() || b.Mean() != full.Mean() || b.Variance() != full.Variance() {
			t.Errorf("cut %d: restored stream diverged: (%d, %g, %g) vs (%d, %g, %g)",
				cut, b.Count(), b.Mean(), b.Variance(), full.Count(), full.Mean(), full.Variance())
		}
	}
}

func TestWelfordEdge(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Error("zero value not neutral")
	}
	w.Add(42)
	if w.Variance() != 0 {
		t.Error("single sample variance nonzero")
	}
}

// Property: Welford matches the two-pass mean/variance.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		var w Welford
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(w.Variance()-variance) < 1e-6*(1+variance)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); !errors.Is(err, ErrBadParameter) {
		t.Errorf("alpha 0 err = %v", err)
	}
	if _, err := NewEWMA(1.5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("alpha 1.5 err = %v", err)
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 {
		t.Error("initial value nonzero")
	}
	e.Add(10) // seeds at 10
	e.Add(20) // 0.5·20 + 0.5·10 = 15
	if e.Value() != 15 {
		t.Errorf("Value = %g, want 15", e.Value())
	}
	// EWMA converges toward a constant stream.
	for i := 0; i < 50; i++ {
		e.Add(100)
	}
	if math.Abs(e.Value()-100) > 1e-9 {
		t.Errorf("did not converge: %g", e.Value())
	}
}

func TestP2QuantileValidation(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := NewP2Quantile(q); !errors.Is(err, ErrBadParameter) {
			t.Errorf("q=%g err = %v", q, err)
		}
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	p, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value() != 0 {
		t.Error("empty estimator should read 0")
	}
	p.Add(3)
	p.Add(1)
	p.Add(2)
	if v := p.Value(); v != 2 {
		t.Errorf("3-sample median = %g, want 2", v)
	}
	if p.Count() != 3 {
		t.Errorf("Count = %d", p.Count())
	}
}

// TestP2QuantileSmallSampleContract pins the partial-estimate behavior
// with fewer than 5 observations (too few for the P² markers): Value
// returns the exact nearest-rank quantile — the ⌈q·n⌉-th order
// statistic — of the samples seen so far, allocation-free, and the
// estimator transitions seamlessly into streaming mode at sample 5.
func TestP2QuantileSmallSampleContract(t *testing.T) {
	for _, tc := range []struct {
		q    float64
		xs   []float64
		want float64
	}{
		{0.5, []float64{7}, 7},                   // single sample is every quantile
		{0.95, []float64{7}, 7},                  //
		{0.25, []float64{4, 1, 3, 2}, 1},         // ⌈0.25·4⌉ = 1st order statistic
		{0.5, []float64{4, 1, 3, 2}, 2},          // ⌈0.5·4⌉ = 2nd
		{0.75, []float64{4, 1, 3, 2}, 3},         // ⌈0.75·4⌉ = 3rd
		{0.95, []float64{4, 1, 3, 2}, 4},         // ⌈0.95·4⌉ = 4th (max)
		{0.05, []float64{10, -2}, -2},            // low quantile → min
		{0.9, []float64{5, 5, 5}, 5},             // ties
		{0.5, []float64{2, 1, 3, 5, 4, 6, 0}, 3}, // ≥5 samples: P² markers
	} {
		p, err := NewP2Quantile(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range tc.xs {
			p.Add(x)
		}
		if v := p.Value(); v != tc.want {
			t.Errorf("q=%g after %v: Value = %g, want %g", tc.q, tc.xs, v, tc.want)
		}
	}

	// The small-sample read path must not allocate (it runs inside
	// per-period telemetry gauges).
	p, err := NewP2Quantile(0.05)
	if err != nil {
		t.Fatal(err)
	}
	p.Add(3)
	p.Add(1)
	if allocs := testing.AllocsPerRun(100, func() { _ = p.Value() }); allocs != 0 {
		t.Errorf("small-sample Value allocated %v per call, want 0", allocs)
	}
}

func TestP2QuantileAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, q := range []float64{0.5, 0.9, 0.95} {
		p, err := NewP2Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		n := 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 10 // skewed distribution
			p.Add(xs[i])
		}
		sort.Float64s(xs)
		exact := xs[int(q*float64(n))]
		if rel := math.Abs(p.Value()-exact) / exact; rel > 0.05 {
			t.Errorf("q=%g: P2 %g vs exact %g (rel %g)", q, p.Value(), exact, rel)
		}
	}
}

func TestForecastTracker(t *testing.T) {
	f, err := NewForecastTracker()
	if err != nil {
		t.Fatal(err)
	}
	if f.Bias() != 0 || f.RMSE() != 0 || f.UnderpredictionRate() != 0 {
		t.Error("empty tracker not neutral")
	}
	// Systematic underprediction by 5.
	for i := 0; i < 100; i++ {
		f.Observe(95, 100)
	}
	if math.Abs(f.Bias()+5) > 1e-12 {
		t.Errorf("Bias = %g, want -5", f.Bias())
	}
	if math.Abs(f.MAE()-5) > 1e-12 {
		t.Errorf("MAE = %g, want 5", f.MAE())
	}
	if math.Abs(f.RMSE()-5) > 1e-9 {
		t.Errorf("RMSE = %g, want 5", f.RMSE())
	}
	if f.UnderpredictionRate() != 1 {
		t.Errorf("UnderpredictionRate = %g, want 1", f.UnderpredictionRate())
	}
	if f.Count() != 100 {
		t.Errorf("Count = %d", f.Count())
	}
	if math.Abs(f.P95AbsError()-5) > 0.5 {
		t.Errorf("P95AbsError = %g, want ~5", f.P95AbsError())
	}
}

func TestForecastTrackerMixedErrors(t *testing.T) {
	f, err := NewForecastTracker()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		real := 100.0
		fc := real + rng.NormFloat64()*10 // unbiased noise, sd 10
		f.Observe(fc, real)
	}
	if math.Abs(f.Bias()) > 1 {
		t.Errorf("Bias = %g, want ~0", f.Bias())
	}
	if math.Abs(f.RMSE()-10) > 1 {
		t.Errorf("RMSE = %g, want ~10", f.RMSE())
	}
	if r := f.UnderpredictionRate(); r < 0.45 || r > 0.55 {
		t.Errorf("UnderpredictionRate = %g, want ~0.5", r)
	}
	// |N(0,10)| p95 ≈ 19.6.
	if p := f.P95AbsError(); p < 17 || p > 23 {
		t.Errorf("P95AbsError = %g, want ~19.6", p)
	}
}

package queue

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMM1Delay(t *testing.T) {
	d, err := MM1Delay(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.0/3) > 1e-12 {
		t.Errorf("delay = %g, want 1/3", d)
	}
}

func TestMM1DelayErrors(t *testing.T) {
	if _, err := MM1Delay(5, 5); !errors.Is(err, ErrUnstable) {
		t.Errorf("rho=1 err = %v", err)
	}
	if _, err := MM1Delay(6, 5); !errors.Is(err, ErrUnstable) {
		t.Errorf("rho>1 err = %v", err)
	}
	if _, err := MM1Delay(-1, 5); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative lambda err = %v", err)
	}
	if _, err := MM1Delay(1, 0); !errors.Is(err, ErrBadParameter) {
		t.Errorf("zero mu err = %v", err)
	}
}

func TestPercentileFactor(t *testing.T) {
	f, err := PercentileFactor(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-math.Log(20)) > 1e-12 {
		t.Errorf("factor = %g, want ln 20", f)
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, err := PercentileFactor(bad); !errors.Is(err, ErrBadParameter) {
			t.Errorf("phi=%g err = %v", bad, err)
		}
	}
}

func TestCoefficientMatchesPaperFormula(t *testing.T) {
	// a = 1 / (mu - 1/(dbar - d)) for the base case.
	s := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25}
	a, err := s.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (10 - 1/(0.25-0.05))
	if math.Abs(a-want) > 1e-12 {
		t.Errorf("a = %g, want %g", a, want)
	}
}

func TestCoefficientInfeasiblePairs(t *testing.T) {
	// Network delay alone exceeds the SLA: a = +Inf.
	s := SLAParams{Mu: 10, NetworkDelay: 0.3, MaxDelay: 0.25}
	a, err := s.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a, 1) {
		t.Errorf("a = %g, want +Inf", a)
	}
	// mu too small for the remaining budget: also +Inf.
	s = SLAParams{Mu: 1, NetworkDelay: 0.0, MaxDelay: 0.5}
	a, err = s.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a, 1) {
		t.Errorf("small-mu a = %g, want +Inf", a)
	}
}

func TestCoefficientReservationRatio(t *testing.T) {
	base := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25}
	over := base
	over.ReservationRatio = 1.5
	a0, err := base.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := over.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1-1.5*a0) > 1e-12 {
		t.Errorf("r=1.5 coefficient %g, want %g", a1, 1.5*a0)
	}
	bad := base
	bad.ReservationRatio = 0.5
	if _, err := bad.Coefficient(); !errors.Is(err, ErrBadParameter) {
		t.Errorf("r<1 err = %v", err)
	}
}

func TestCoefficientPercentileTightens(t *testing.T) {
	base := SLAParams{Mu: 20, NetworkDelay: 0.02, MaxDelay: 0.3}
	pct := base
	pct.Percentile = 0.95
	a0, err := base.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := pct.Coefficient()
	if err != nil {
		t.Fatal(err)
	}
	if a1 <= a0 {
		t.Errorf("percentile bound should need more servers: a95=%g amean=%g", a1, a0)
	}
}

func TestCoefficientParamErrors(t *testing.T) {
	if _, err := (SLAParams{Mu: 0, MaxDelay: 1}).Coefficient(); !errors.Is(err, ErrBadParameter) {
		t.Errorf("mu=0 err = %v", err)
	}
	if _, err := (SLAParams{Mu: 1, NetworkDelay: -1, MaxDelay: 1}).Coefficient(); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative delay err = %v", err)
	}
	bad := SLAParams{Mu: 10, MaxDelay: 1, Percentile: 2}
	if _, err := bad.Coefficient(); !errors.Is(err, ErrBadParameter) {
		t.Errorf("phi=2 err = %v", err)
	}
}

func TestRequiredServersSatisfiesSLAExactly(t *testing.T) {
	s := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25}
	for _, sigma := range []float64{0.1, 1, 10, 250} {
		x, err := s.RequiredServers(sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !s.MeetsSLA(x, sigma) {
			t.Errorf("sigma=%g: x=%g does not meet SLA", sigma, x)
		}
		// Slightly fewer servers must violate the SLA (tightness).
		if s.MeetsSLA(x*0.99, sigma) {
			t.Errorf("sigma=%g: SLA not tight at required x=%g", sigma, x)
		}
	}
}

func TestRequiredServersEdgeCases(t *testing.T) {
	s := SLAParams{Mu: 10, NetworkDelay: 0.3, MaxDelay: 0.25} // infeasible pair
	x, err := s.RequiredServers(0)
	if err != nil || x != 0 {
		t.Errorf("zero demand on infeasible pair: x=%g err=%v", x, err)
	}
	x, err = s.RequiredServers(1)
	if err != nil || !math.IsInf(x, 1) {
		t.Errorf("positive demand on infeasible pair: x=%g err=%v", x, err)
	}
	if _, err := s.RequiredServers(-1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative sigma err = %v", err)
	}
}

func TestMeetsSLAEdgeCases(t *testing.T) {
	s := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25}
	if !s.MeetsSLA(0, 0) {
		t.Error("zero demand should always meet SLA")
	}
	if s.MeetsSLA(0, 1) {
		t.Error("zero servers cannot serve demand")
	}
	if s.MeetsSLA(0.1, 10) { // overloaded: lambda = 100 > mu
		t.Error("overloaded queue reported as meeting SLA")
	}
}

// The discrete-event simulator must agree with the closed-form M/M/1 mean
// sojourn time within Monte-Carlo noise.
func TestSimulatorMatchesMM1(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	lambda, mu := 6.0, 10.0
	res, err := SimulateMMc(lambda, mu, 1, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MM1Delay(lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.MeanDelay-want) / want; rel > 0.05 {
		t.Errorf("sim mean %g vs analytic %g (rel err %g)", res.MeanDelay, want, rel)
	}
	// M/M/1 sojourn time is exponential: P95 ≈ ln(20)·mean.
	wantP95 := math.Log(20) * want
	if rel := math.Abs(res.P95Delay-wantP95) / wantP95; rel > 0.08 {
		t.Errorf("sim p95 %g vs analytic %g (rel err %g)", res.P95Delay, wantP95, rel)
	}
}

// A controller-style allocation x = a·σ split across ceil(x) servers must
// empirically meet the per-server SLA in simulation.
func TestAllocationMeetsSLAEmpirically(t *testing.T) {
	s := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25}
	sigma := 47.0
	x, err := s.RequiredServers(sigma)
	if err != nil {
		t.Fatal(err)
	}
	servers := int(math.Ceil(x))
	perServer := sigma / float64(servers)
	rng := rand.New(rand.NewSource(777))
	res, err := SimulateMMc(perServer, s.Mu, 1, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := s.NetworkDelay + res.MeanDelay
	if total > s.MaxDelay*1.05 {
		t.Errorf("empirical delay %g exceeds SLA %g", total, s.MaxDelay)
	}
}

func TestSimulateMMcErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateMMc(0, 1, 1, 10, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("lambda=0 err = %v", err)
	}
	if _, err := SimulateMMc(1, 1, 0, 10, rng); !errors.Is(err, ErrBadParameter) {
		t.Errorf("c=0 err = %v", err)
	}
	if _, err := SimulateMMc(1, 1, 1, 10, nil); !errors.Is(err, ErrBadParameter) {
		t.Errorf("nil rng err = %v", err)
	}
}

func TestSimulateMMcMoreServersReduceDelay(t *testing.T) {
	lambda, mu := 15.0, 10.0 // needs c >= 2 for stability
	r2, err := SimulateMMc(lambda, mu, 2, 50000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := SimulateMMc(lambda, mu, 4, 50000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if r4.MeanDelay >= r2.MeanDelay {
		t.Errorf("c=4 delay %g not below c=2 delay %g", r4.MeanDelay, r2.MeanDelay)
	}
}

// Property: the SLA coefficient is monotone — a tighter latency budget or a
// slower server never decreases a.
func TestQuickCoefficientMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1 + rng.Float64()*30
		d := rng.Float64() * 0.1
		dbar := d + 0.05 + rng.Float64()
		base := SLAParams{Mu: mu, NetworkDelay: d, MaxDelay: dbar}
		tighter := base
		tighter.MaxDelay = d + (dbar-d)*0.6
		slower := base
		slower.Mu = mu * 0.7
		a0, err := base.Coefficient()
		if err != nil {
			return false
		}
		at, err := tighter.Coefficient()
		if err != nil {
			return false
		}
		as, err := slower.Coefficient()
		if err != nil {
			return false
		}
		return at >= a0-1e-12 && as >= a0-1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: RequiredServers scales linearly with demand.
func TestQuickRequiredServersLinear(t *testing.T) {
	s := SLAParams{Mu: 12, NetworkDelay: 0.01, MaxDelay: 0.2}
	f := func(raw float64) bool {
		sigma := math.Abs(raw)
		if math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma > 1e9 {
			sigma = 1
		}
		x1, err1 := s.RequiredServers(sigma)
		x2, err2 := s.RequiredServers(2 * sigma)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(x2-2*x1) <= 1e-9*(1+x2)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

package queue

import (
	"fmt"
	"math"
)

// ErlangC returns the steady-state probability that an arriving request
// must wait in an M/M/c queue with c servers of rate mu each and total
// arrival rate lambda (the Erlang-C formula). It extends the paper's
// per-server M/M/1 model to pooled-queue deployments, letting users
// quantify how much the paper's split-demand assumption over-provisions
// relative to a shared queue.
func ErlangC(lambda, mu float64, c int) (float64, error) {
	if lambda <= 0 || mu <= 0 || c < 1 {
		return 0, fmt.Errorf("lambda=%g mu=%g c=%d: %w", lambda, mu, c, ErrBadParameter)
	}
	a := lambda / mu // offered load in Erlangs
	if a >= float64(c) {
		return 0, fmt.Errorf("offered load %g >= c=%d: %w", a, c, ErrUnstable)
	}
	// Compute the Erlang-B recursion (numerically stable), then convert
	// to Erlang-C: C = B / (1 − ρ(1 − B)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// MMcWait returns the mean queueing (waiting) time of an M/M/c queue.
func MMcWait(lambda, mu float64, c int) (float64, error) {
	pc, err := ErlangC(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	return pc / (float64(c)*mu - lambda), nil
}

// MMcSojourn returns the mean sojourn (wait + service) time of an M/M/c
// queue.
func MMcSojourn(lambda, mu float64, c int) (float64, error) {
	w, err := MMcWait(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	return w + 1/mu, nil
}

// RequiredServersPooled returns the minimum integer number of servers c
// such that a pooled M/M/c queue absorbing the whole demand sigma meets
// the SLA's queueing-delay budget. Compare with SLAParams.RequiredServers
// (the paper's split-demand M/M/1 rule): pooling always needs at most as
// many servers (statistical multiplexing), which bounds the conservatism
// of the paper's model.
func (s SLAParams) RequiredServersPooled(sigma float64) (int, error) {
	if sigma < 0 {
		return 0, fmt.Errorf("sigma=%g: %w", sigma, ErrBadParameter)
	}
	if s.Mu <= 0 {
		return 0, fmt.Errorf("mu=%g: %w", s.Mu, ErrBadParameter)
	}
	if sigma == 0 {
		return 0, nil
	}
	budget := s.MaxDelay - s.NetworkDelay
	phiFac := 1.0
	if s.Percentile != 0 {
		f, err := PercentileFactor(s.Percentile)
		if err != nil {
			return 0, err
		}
		phiFac = f
	}
	if budget <= 0 {
		return 0, fmt.Errorf("no delay budget (d=%g, dbar=%g): %w",
			s.NetworkDelay, s.MaxDelay, ErrUnstable)
	}
	// Start from the stability floor and search upward. The sojourn time
	// is decreasing in c, so the first c that fits is minimal.
	cMin := int(math.Floor(sigma/s.Mu)) + 1
	const maxServers = 1 << 22
	for c := cMin; c < maxServers; c++ {
		t, err := MMcSojourn(sigma, s.Mu, c)
		if err != nil {
			continue // still unstable at this c (float edge), try next
		}
		if phiFac*t <= budget {
			if r := s.ReservationRatio; r > 1 {
				return int(math.Ceil(float64(c) * r)), nil
			}
			return c, nil
		}
	}
	return 0, fmt.Errorf("sigma=%g mu=%g: %w", sigma, s.Mu, ErrUnstable)
}

// Package queue implements the latency model used by the DSPP formulation:
// closed-form M/M/1 queueing delay (paper eq. 7), the SLA coefficient a^lv
// that reduces the latency constraint to a linear one (eqs. 8–11), the
// φ-percentile extension and the reservation (over-provisioning) ratio r
// that the paper sketches in §IV-B, plus a discrete-event M/M/c simulator
// used by tests to validate that controller allocations actually meet the
// SLA.
package queue

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sentinel errors.
var (
	// ErrUnstable means the per-server arrival rate meets or exceeds the
	// service rate, so the queue has no steady state.
	ErrUnstable = errors.New("queue: arrival rate >= service rate")
	// ErrBadParameter flags non-positive rates or ratios.
	ErrBadParameter = errors.New("queue: invalid parameter")
)

// MM1Delay returns the steady-state mean sojourn time 1/(μ−λ) of an M/M/1
// queue with service rate mu and arrival rate lambda (paper eq. 7).
func MM1Delay(lambda, mu float64) (float64, error) {
	if mu <= 0 || lambda < 0 {
		return 0, fmt.Errorf("lambda=%g mu=%g: %w", lambda, mu, ErrBadParameter)
	}
	if lambda >= mu {
		return 0, fmt.Errorf("lambda=%g mu=%g: %w", lambda, mu, ErrUnstable)
	}
	return 1 / (mu - lambda), nil
}

// PercentileFactor returns the multiplier ln(1/(1−φ)) that converts a mean
// M/M/1 sojourn-time bound into a φ-percentile bound (§IV-B). φ must be in
// (0, 1). φ = 0.95 gives ≈ 3.0.
func PercentileFactor(phi float64) (float64, error) {
	if phi <= 0 || phi >= 1 {
		return 0, fmt.Errorf("phi=%g: %w", phi, ErrBadParameter)
	}
	return math.Log(1 / (1 - phi)), nil
}

// SLAParams configures the latency constraint of a (data center, location)
// pair.
type SLAParams struct {
	// Mu is the request service rate of one server (req/s).
	Mu float64
	// NetworkDelay is the fixed network latency d_lv (seconds).
	NetworkDelay float64
	// MaxDelay is the SLA bound d̄_lv on total average delay (seconds).
	MaxDelay float64
	// ReservationRatio r ≥ 1 over-provisions capacity (§IV-B); 0 means 1.
	ReservationRatio float64
	// Percentile φ in (0,1) switches the bound from mean delay to the
	// φ-percentile of delay; 0 means bound the mean.
	Percentile float64
}

// Coefficient computes the SLA coefficient a^lv of paper eq. 10:
//
//	a = r·φfac / (μ − φfac/(d̄ − d))
//
// so that the latency constraint becomes the linear x ≥ a·σ (eq. 11).
// It returns +Inf (with nil error) when the pair cannot satisfy the SLA at
// any allocation (d̄ ≤ d, or μ too small): the caller excludes such pairs
// from the placement graph, exactly as the paper assigns a^lv = ∞.
func (s SLAParams) Coefficient() (float64, error) {
	if s.Mu <= 0 {
		return 0, fmt.Errorf("mu=%g: %w", s.Mu, ErrBadParameter)
	}
	if s.NetworkDelay < 0 || s.MaxDelay < 0 {
		return 0, fmt.Errorf("delays (%g, %g): %w", s.NetworkDelay, s.MaxDelay, ErrBadParameter)
	}
	r := s.ReservationRatio
	if r == 0 {
		r = 1
	}
	if r < 1 {
		return 0, fmt.Errorf("reservation ratio %g < 1: %w", r, ErrBadParameter)
	}
	phiFac := 1.0
	if s.Percentile != 0 {
		f, err := PercentileFactor(s.Percentile)
		if err != nil {
			return 0, err
		}
		phiFac = f
	}
	budget := s.MaxDelay - s.NetworkDelay
	if budget <= 0 {
		return math.Inf(1), nil
	}
	denom := s.Mu - phiFac/budget
	if denom <= 0 {
		return math.Inf(1), nil
	}
	return r / denom, nil
}

// RequiredServers returns the minimum (continuous) number of servers that
// satisfies the SLA for demand sigma, i.e. a·σ.
func (s SLAParams) RequiredServers(sigma float64) (float64, error) {
	if sigma < 0 {
		return 0, fmt.Errorf("sigma=%g: %w", sigma, ErrBadParameter)
	}
	a, err := s.Coefficient()
	if err != nil {
		return 0, err
	}
	if math.IsInf(a, 1) {
		if sigma == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return a * sigma, nil
}

// MeetsSLA reports whether x servers absorbing demand sigma (split evenly)
// keep the average total delay within the SLA bound.
func (s SLAParams) MeetsSLA(x, sigma float64) bool {
	if sigma == 0 {
		return true
	}
	if x <= 0 {
		return false
	}
	d, err := MM1Delay(sigma/x, s.Mu)
	if err != nil {
		return false
	}
	phiFac := 1.0
	if s.Percentile != 0 {
		f, err := PercentileFactor(s.Percentile)
		if err != nil {
			return false
		}
		phiFac = f
	}
	return s.NetworkDelay+phiFac*d <= s.MaxDelay*(1+1e-9)
}

// SimResult summarizes a discrete-event simulation run.
type SimResult struct {
	Completed int     // requests that finished service
	MeanDelay float64 // mean sojourn time (wait + service)
	P95Delay  float64 // 95th-percentile sojourn time
	MaxQueue  int     // peak number of requests in system
}

// SimulateMMc runs a discrete-event simulation of an M/M/c queue with
// Poisson arrivals at rate lambda, c identical exponential servers of rate
// mu each, for n arrivals. It is used in tests to validate the closed-form
// model (c = 1 reproduces M/M/1).
func SimulateMMc(lambda, mu float64, c, n int, rng *rand.Rand) (*SimResult, error) {
	if lambda <= 0 || mu <= 0 || c < 1 || n < 1 {
		return nil, fmt.Errorf("lambda=%g mu=%g c=%d n=%d: %w", lambda, mu, c, n, ErrBadParameter)
	}
	if rng == nil {
		return nil, fmt.Errorf("nil rng: %w", ErrBadParameter)
	}
	// Event-driven simulation with per-server next-free times.
	serverFree := make([]float64, c)
	delays := make([]float64, 0, n)
	now := 0.0
	inSystemPeak := 0
	// Track pending departure times to compute the in-system peak.
	pending := make([]float64, 0, c+16)
	for i := 0; i < n; i++ {
		now += rng.ExpFloat64() / lambda
		// Earliest-free server (FCFS with homogeneous servers).
		best := 0
		for j := 1; j < c; j++ {
			if serverFree[j] < serverFree[best] {
				best = j
			}
		}
		start := now
		if serverFree[best] > start {
			start = serverFree[best]
		}
		service := rng.ExpFloat64() / mu
		depart := start + service
		serverFree[best] = depart
		delays = append(delays, depart-now)

		// Count concurrent requests at this arrival.
		alive := pending[:0]
		for _, d := range pending {
			if d > now {
				alive = append(alive, d)
			}
		}
		pending = append(alive, depart)
		if len(pending) > inSystemPeak {
			inSystemPeak = len(pending)
		}
	}
	var sum float64
	for _, d := range delays {
		sum += d
	}
	sorted := append([]float64(nil), delays...)
	sort.Float64s(sorted)
	p95 := sorted[int(float64(len(sorted))*0.95)]
	return &SimResult{
		Completed: len(delays),
		MeanDelay: sum / float64(len(delays)),
		P95Delay:  p95,
		MaxQueue:  inSystemPeak,
	}, nil
}

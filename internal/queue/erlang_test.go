package queue

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestErlangCSingleServerIsMM1(t *testing.T) {
	// For c = 1, Erlang-C reduces to rho, and the sojourn time to the
	// M/M/1 formula.
	lambda, mu := 6.0, 10.0
	pc, err := ErlangC(lambda, mu, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc-0.6) > 1e-12 {
		t.Errorf("ErlangC = %g, want rho=0.6", pc)
	}
	tSojourn, err := MMcSojourn(lambda, mu, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MM1Delay(lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tSojourn-want) > 1e-12 {
		t.Errorf("sojourn = %g, want %g", tSojourn, want)
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Classic teletraffic example: a = 2 Erlangs, c = 3.
	// B(3,2) = (8/6)/(1+2+2+8/6) = (4/3)/(19/3) = 4/19.
	// C = B/(1-rho(1-B)) with rho = 2/3: C = (4/19)/(1-(2/3)(15/19)) = 4/9.
	pc, err := ErlangC(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc-4.0/9.0) > 1e-12 {
		t.Errorf("ErlangC(2 Erlangs, c=3) = %g, want 4/9", pc)
	}
}

func TestErlangCErrors(t *testing.T) {
	if _, err := ErlangC(0, 1, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("lambda=0 err = %v", err)
	}
	if _, err := ErlangC(1, 0, 1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("mu=0 err = %v", err)
	}
	if _, err := ErlangC(1, 1, 0); !errors.Is(err, ErrBadParameter) {
		t.Errorf("c=0 err = %v", err)
	}
	if _, err := ErlangC(10, 1, 5); !errors.Is(err, ErrUnstable) {
		t.Errorf("overload err = %v", err)
	}
}

func TestMMcSojournMatchesSimulation(t *testing.T) {
	lambda, mu, c := 25.0, 10.0, 4
	want, err := MMcSojourn(lambda, mu, c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2024))
	sim, err := SimulateMMc(lambda, mu, c, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sim.MeanDelay-want) / want; rel > 0.05 {
		t.Errorf("sim %g vs Erlang-C %g (rel err %g)", sim.MeanDelay, want, rel)
	}
}

func TestRequiredServersPooled(t *testing.T) {
	s := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25}
	sigma := 470.0
	c, err := s.RequiredServersPooled(sigma)
	if err != nil {
		t.Fatal(err)
	}
	// The returned c must satisfy the SLA; c−1 must not.
	tc, err := MMcSojourn(sigma, s.Mu, c)
	if err != nil {
		t.Fatal(err)
	}
	if s.NetworkDelay+tc > s.MaxDelay+1e-12 {
		t.Errorf("c=%d delay %g exceeds budget", c, s.NetworkDelay+tc)
	}
	if c > 1 {
		if tPrev, err := MMcSojourn(sigma, s.Mu, c-1); err == nil {
			if s.NetworkDelay+tPrev <= s.MaxDelay {
				t.Errorf("c=%d not minimal: c-1 also satisfies SLA", c)
			}
		}
	}
	// Pooling must be at least as efficient as the paper's split rule.
	split, err := s.RequiredServers(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if float64(c) > math.Ceil(split)+1e-9 {
		t.Errorf("pooled %d > split %g: multiplexing gain lost", c, math.Ceil(split))
	}
}

func TestRequiredServersPooledEdges(t *testing.T) {
	s := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25}
	c, err := s.RequiredServersPooled(0)
	if err != nil || c != 0 {
		t.Errorf("zero demand: %d, %v", c, err)
	}
	if _, err := s.RequiredServersPooled(-1); !errors.Is(err, ErrBadParameter) {
		t.Errorf("negative sigma err = %v", err)
	}
	bad := SLAParams{Mu: 10, NetworkDelay: 0.3, MaxDelay: 0.25}
	if _, err := bad.RequiredServersPooled(5); !errors.Is(err, ErrUnstable) {
		t.Errorf("no budget err = %v", err)
	}
	// Reservation ratio scales the result.
	res := SLAParams{Mu: 10, NetworkDelay: 0.05, MaxDelay: 0.25, ReservationRatio: 1.5}
	base, err := s.RequiredServersPooled(100)
	if err != nil {
		t.Fatal(err)
	}
	cushioned, err := res.RequiredServersPooled(100)
	if err != nil {
		t.Fatal(err)
	}
	if cushioned != int(math.Ceil(float64(base)*1.5)) {
		t.Errorf("cushioned = %d, want ceil(1.5*%d)", cushioned, base)
	}
}

// Property: Erlang-C lies in (0, 1] and decreases as servers are added.
func TestQuickErlangCMonotoneInServers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1 + rng.Float64()*10
		c := 1 + rng.Intn(20)
		lambda := rng.Float64() * mu * float64(c) * 0.95
		if lambda <= 0 {
			lambda = 0.1
		}
		p1, err := ErlangC(lambda, mu, c)
		if err != nil {
			return true // unstable draw, skip
		}
		if p1 <= 0 || p1 > 1 {
			return false
		}
		p2, err := ErlangC(lambda, mu, c+1)
		if err != nil {
			return false
		}
		return p2 <= p1+1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(40))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: pooled provisioning never needs more servers than the
// split-demand rule (statistical multiplexing).
func TestQuickPoolingNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := SLAParams{
			Mu:           5 + rng.Float64()*50,
			NetworkDelay: rng.Float64() * 0.05,
			MaxDelay:     0.1 + rng.Float64()*0.4,
		}
		sigma := 1 + rng.Float64()*2000
		split, err := s.RequiredServers(sigma)
		if err != nil || math.IsInf(split, 1) {
			return true // infeasible pair, skip
		}
		pooled, err := s.RequiredServersPooled(sigma)
		if err != nil {
			return false
		}
		return float64(pooled) <= math.Ceil(split)+1e-9
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

package lqr

import (
	"fmt"
	"testing"

	"dspp/internal/linalg"
)

// BenchmarkRiccatiSolve measures the exact LQ solver across sizes — the
// per-step cost of the soft-tracking controller, to compare with the
// interior-point benchmarks in package qp.
func BenchmarkRiccatiSolve(b *testing.B) {
	for _, sz := range []struct{ n, w int }{
		{4, 5}, {16, 5}, {32, 10}, {96, 5},
	} {
		b.Run(fmt.Sprintf("n%d_W%d", sz.n, sz.w), func(b *testing.B) {
			q := linalg.NewVector(sz.n)
			r := linalg.NewVector(sz.n)
			x0 := linalg.NewVector(sz.n)
			for i := 0; i < sz.n; i++ {
				q[i] = 1
				r[i] = 0.01
				x0[i] = float64(i)
			}
			targets := make([]linalg.Vector, sz.w)
			for t := range targets {
				targets[t] = linalg.NewVector(sz.n)
				for i := range targets[t] {
					targets[t][i] = float64(10 + t + i)
				}
			}
			prob := &Problem{
				Q:       linalg.Diag(q),
				R:       linalg.Diag(r),
				Targets: targets,
				X0:      x0,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package lqr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dspp/internal/linalg"
	"dspp/internal/qp"
)

func diagMat(vals ...float64) *linalg.Matrix {
	return linalg.Diag(linalg.VectorOf(vals...))
}

func TestSolveValidation(t *testing.T) {
	good := &Problem{
		Q:       linalg.Identity(2),
		R:       linalg.Identity(2),
		Targets: []linalg.Vector{linalg.VectorOf(1, 1)},
		X0:      linalg.VectorOf(0, 0),
	}
	if _, err := Solve(good); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(p Problem) Problem
	}{
		{"nil Q", func(p Problem) Problem { p.Q = nil; return p }},
		{"R shape", func(p Problem) Problem { p.R = linalg.Identity(3); return p }},
		{"A shape", func(p Problem) Problem { p.A = linalg.Identity(3); return p }},
		{"B shape", func(p Problem) Problem { p.B = linalg.NewMatrix(2, 3); return p }},
		{"empty horizon", func(p Problem) Problem { p.Targets = nil; return p }},
		{"target width", func(p Problem) Problem {
			p.Targets = []linalg.Vector{linalg.VectorOf(1)}
			return p
		}},
		{"x0 width", func(p Problem) Problem { p.X0 = linalg.VectorOf(1); return p }},
		// Note: R = 0 alone is fine — the stage stays strictly convex
		// through the Q-weighted next-state cost. Only Q = R = 0 makes
		// the Riccati step singular.
		{"Q and R both zero", func(p Problem) Problem {
			p.Q = linalg.NewMatrix(2, 2)
			p.R = linalg.NewMatrix(2, 2)
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(*good)
			if _, err := Solve(&bad); !errors.Is(err, ErrBadProblem) {
				t.Errorf("err = %v, want ErrBadProblem", err)
			}
		})
	}
}

func TestSingleStageScalar(t *testing.T) {
	// One step, scalar: min q(x0+u−r)² + ρu² → u* = q·(r−x0)/(q+ρ).
	q, rho, r, x0 := 2.0, 1.0, 10.0, 4.0
	sol, err := Solve(&Problem{
		Q:       diagMat(q),
		R:       diagMat(rho),
		Targets: []linalg.Vector{linalg.VectorOf(r)},
		X0:      linalg.VectorOf(x0),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := q * (r - x0) / (q + rho)
	if math.Abs(sol.U[0][0]-want) > 1e-10 {
		t.Errorf("u = %g, want %g", sol.U[0][0], want)
	}
}

func TestTrackingConvergesToTarget(t *testing.T) {
	// Cheap control, long horizon: the state should settle on the target.
	w := 10
	targets := make([]linalg.Vector, w)
	for i := range targets {
		targets[i] = linalg.VectorOf(5, -3)
	}
	sol, err := Solve(&Problem{
		Q:       linalg.Identity(2),
		R:       diagMat(1e-4, 1e-4),
		Targets: targets,
		X0:      linalg.VectorOf(0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	last := sol.X[w-1]
	if math.Abs(last[0]-5) > 0.01 || math.Abs(last[1]+3) > 0.01 {
		t.Errorf("final state %v, want (5,-3)", last)
	}
}

func TestExpensiveControlStaysPut(t *testing.T) {
	targets := []linalg.Vector{linalg.VectorOf(100), linalg.VectorOf(100)}
	sol, err := Solve(&Problem{
		Q:       diagMat(1e-6),
		R:       diagMat(1e6),
		Targets: targets,
		X0:      linalg.VectorOf(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.U[0][0]) > 1e-3 {
		t.Errorf("u = %g, want ~0 under huge control cost", sol.U[0][0])
	}
}

// buildTrackingQP expands the LQ tracking problem into a dense QP over the
// stacked controls (A = B = I), for cross-validation against the IPM.
func buildTrackingQP(prob *Problem) (*qp.Problem, error) {
	n := prob.Q.Rows()
	w := len(prob.Targets)
	dim := n * w
	// x_t = x0 + Σ_{τ<t+1} u_τ. Objective:
	// Σ_t (x_t − r_t)ᵀQ(x_t − r_t) + u_tᵀRu_t.
	qMat := linalg.NewMatrix(dim, dim)
	cVec := linalg.NewVector(dim)
	// Control cost blocks: 2R on the diagonal (QP uses ½uᵀQu).
	for t := 0; t < w; t++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				qMat.Inc(t*n+i, t*n+j, 2*prob.R.At(i, j))
			}
		}
	}
	// Tracking cost: for each t, (x0 + Σ_{τ≤t} u_τ − r_t) through Q.
	for t := 0; t < w; t++ {
		// Precompute e = x0 − r_t.
		e := prob.X0.Clone()
		if err := e.AXPY(-1, prob.Targets[t]); err != nil {
			return nil, err
		}
		qe := linalg.NewVector(n)
		if err := prob.Q.MulVec(e, qe); err != nil {
			return nil, err
		}
		for tau := 0; tau <= t; tau++ {
			for i := 0; i < n; i++ {
				cVec[tau*n+i] += 2 * qe[i]
			}
			for tau2 := 0; tau2 <= t; tau2++ {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						qMat.Inc(tau*n+i, tau2*n+j, 2*prob.Q.At(i, j))
					}
				}
			}
		}
	}
	return &qp.Problem{Q: qMat, C: cVec}, nil
}

func TestRiccatiMatchesQP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(3)
		w := 1 + rng.Intn(5)
		qDiag := make([]float64, n)
		rDiag := make([]float64, n)
		for i := range qDiag {
			qDiag[i] = 0.5 + rng.Float64()*2
			rDiag[i] = 0.1 + rng.Float64()
		}
		targets := make([]linalg.Vector, w)
		for i := range targets {
			targets[i] = linalg.NewVector(n)
			for j := range targets[i] {
				targets[i][j] = rng.NormFloat64() * 10
			}
		}
		x0 := linalg.NewVector(n)
		for j := range x0 {
			x0[j] = rng.NormFloat64() * 5
		}
		prob := &Problem{
			Q:       linalg.Diag(linalg.VectorOf(qDiag...)),
			R:       linalg.Diag(linalg.VectorOf(rDiag...)),
			Targets: targets,
			X0:      x0,
		}
		sol, err := Solve(prob)
		if err != nil {
			t.Fatalf("trial %d riccati: %v", trial, err)
		}
		qpProb, err := buildTrackingQP(prob)
		if err != nil {
			t.Fatal(err)
		}
		qpSol, err := qp.Solve(qpProb, qp.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d qp: %v", trial, err)
		}
		for tIdx := 0; tIdx < w; tIdx++ {
			for i := 0; i < n; i++ {
				got := sol.U[tIdx][i]
				want := qpSol.X[tIdx*n+i]
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Fatalf("trial %d: u[%d][%d] riccati %g vs qp %g",
						trial, tIdx, i, got, want)
				}
			}
		}
	}
}

func TestNonIdentityDynamics(t *testing.T) {
	// Decaying plant x⁺ = 0.5x + u tracking 10: the steady control must
	// hold u ≈ 0.5·x_ss with x_ss near the target for cheap control.
	w := 20
	targets := make([]linalg.Vector, w)
	for i := range targets {
		targets[i] = linalg.VectorOf(10)
	}
	sol, err := Solve(&Problem{
		A:       diagMat(0.5),
		B:       diagMat(1),
		Q:       diagMat(1),
		R:       diagMat(1e-4),
		Targets: targets,
		X0:      linalg.VectorOf(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	xss := sol.X[w-1][0]
	uss := sol.U[w-1][0]
	if math.Abs(xss-10) > 0.05 {
		t.Errorf("steady state %g, want 10", xss)
	}
	if math.Abs(uss-0.5*10) > 0.3 {
		t.Errorf("steady control %g, want ~5", uss)
	}
}

func TestFeedbackPolicyConsistent(t *testing.T) {
	// Replaying the gains must reproduce the rolled-out controls.
	targets := []linalg.Vector{linalg.VectorOf(3, 1), linalg.VectorOf(1, 4), linalg.VectorOf(0, 0)}
	prob := &Problem{
		Q:       diagMat(1, 2),
		R:       diagMat(0.5, 0.5),
		Targets: targets,
		X0:      linalg.VectorOf(1, -1),
	}
	sol, err := Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	x := prob.X0.Clone()
	for tIdx := range targets {
		u := linalg.NewVector(2)
		if err := sol.Gains[tIdx].MulVec(x, u); err != nil {
			t.Fatal(err)
		}
		if err := u.AXPY(1, sol.Offsets[tIdx]); err != nil {
			t.Fatal(err)
		}
		u.Scale(-1)
		for i := range u {
			if math.Abs(u[i]-sol.U[tIdx][i]) > 1e-10 {
				t.Fatalf("stage %d: policy %v vs rollout %v", tIdx, u, sol.U[tIdx])
			}
		}
		if err := x.AXPY(1, u); err != nil { // A=B=I
			t.Fatal(err)
		}
	}
}

// Property: the Riccati cost never exceeds the cost of the zero-control
// and the greedy full-jump policies (optimality sanity).
func TestQuickRiccatiBeatsHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2)
		w := 1 + rng.Intn(4)
		qd := make([]float64, n)
		rd := make([]float64, n)
		for i := range qd {
			qd[i] = 0.2 + rng.Float64()
			rd[i] = 0.2 + rng.Float64()
		}
		targets := make([]linalg.Vector, w)
		for i := range targets {
			targets[i] = linalg.NewVector(n)
			for j := range targets[i] {
				targets[i][j] = rng.NormFloat64() * 5
			}
		}
		x0 := linalg.NewVector(n)
		prob := &Problem{
			Q:       linalg.Diag(linalg.VectorOf(qd...)),
			R:       linalg.Diag(linalg.VectorOf(rd...)),
			Targets: targets,
			X0:      x0,
		}
		sol, err := Solve(prob)
		if err != nil {
			return false
		}
		evalPolicy := func(controls []linalg.Vector) float64 {
			x := x0.Clone()
			var cost float64
			for tIdx := 0; tIdx < w; tIdx++ {
				u := controls[tIdx]
				_ = x.AXPY(1, u)
				for i := 0; i < n; i++ {
					d := x[i] - targets[tIdx][i]
					cost += qd[i]*d*d + rd[i]*u[i]*u[i]
				}
			}
			return cost
		}
		// Zero policy.
		zero := make([]linalg.Vector, w)
		for i := range zero {
			zero[i] = linalg.NewVector(n)
		}
		// Greedy full-jump policy.
		greedy := make([]linalg.Vector, w)
		x := x0.Clone()
		for tIdx := 0; tIdx < w; tIdx++ {
			u := targets[tIdx].Clone()
			_ = u.AXPY(-1, x)
			greedy[tIdx] = u
			x = targets[tIdx].Clone()
		}
		tol := 1e-8 * (1 + math.Abs(sol.Cost))
		return sol.Cost <= evalPolicy(zero)+tol && sol.Cost <= evalPolicy(greedy)+tol
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Package lqr solves finite-horizon discrete-time linear-quadratic
// tracking problems by backward Riccati recursion:
//
//	minimize  Σ_{t=1..W} (x_t − r_t)ᵀQ(x_t − r_t) + Σ_{t=0..W−1} u_tᵀR u_t
//	subject to x_{t+1} = A x_t + B u_t,  x_0 given.
//
// This is the classical control-theoretic core underlying the paper's
// formulation: DSPP is exactly this problem with A = B = I plus the
// demand/capacity/nonnegativity inequalities. The package provides
//
//   - an exact, allocation-light solver for the unconstrained relaxation
//     (used to cross-validate the interior-point QP solver, and as a fast
//     soft-constraint controller where targets r_t encode a·D̂), and
//   - the time-varying feedback gains, exposing the structure (u = −Kx−k)
//     that the QP solution hides.
package lqr

import (
	"errors"
	"fmt"

	"dspp/internal/linalg"
)

// ErrBadProblem flags inconsistent dimensions or non-PD weights.
var ErrBadProblem = errors.New("lqr: invalid problem")

// Problem is a finite-horizon LQ tracking instance. A and B default to
// identity when nil (the DSPP dynamics x⁺ = x + u).
type Problem struct {
	// A and B are the n×n dynamics matrices (nil = identity).
	A, B *linalg.Matrix
	// Q is the n×n state-tracking weight (symmetric PSD).
	Q *linalg.Matrix
	// R is the n×n control weight (symmetric PD).
	R *linalg.Matrix
	// Targets[t] is the reference r_{t+1} for the state after control t;
	// len(Targets) is the horizon W.
	Targets []linalg.Vector
	// X0 is the initial state.
	X0 linalg.Vector
}

// Solution is the optimal trajectory and its feedback representation.
type Solution struct {
	// U[t] is the optimal control at stage t.
	U []linalg.Vector
	// X[t] is the state after control t (aligned with Problem.Targets).
	X []linalg.Vector
	// Gains[t] and Offsets[t] give the policy u_t = −Gains[t]·x_t − Offsets[t].
	Gains   []*linalg.Matrix
	Offsets []linalg.Vector
	// Cost is the achieved objective value.
	Cost float64
}

func (p *Problem) dims() (n, w int, err error) {
	if p.Q == nil || p.R == nil {
		return 0, 0, fmt.Errorf("nil Q or R: %w", ErrBadProblem)
	}
	n = p.Q.Rows()
	if p.Q.Cols() != n || p.R.Rows() != n || p.R.Cols() != n {
		return 0, 0, fmt.Errorf("Q %dx%d, R %dx%d: %w",
			p.Q.Rows(), p.Q.Cols(), p.R.Rows(), p.R.Cols(), ErrBadProblem)
	}
	if p.A != nil && (p.A.Rows() != n || p.A.Cols() != n) {
		return 0, 0, fmt.Errorf("A %dx%d, n=%d: %w", p.A.Rows(), p.A.Cols(), n, ErrBadProblem)
	}
	if p.B != nil && (p.B.Rows() != n || p.B.Cols() != n) {
		return 0, 0, fmt.Errorf("B %dx%d, n=%d: %w", p.B.Rows(), p.B.Cols(), n, ErrBadProblem)
	}
	w = len(p.Targets)
	if w == 0 {
		return 0, 0, fmt.Errorf("empty horizon: %w", ErrBadProblem)
	}
	for t, r := range p.Targets {
		if len(r) != n {
			return 0, 0, fmt.Errorf("target %d has %d entries, n=%d: %w", t, len(r), n, ErrBadProblem)
		}
	}
	if len(p.X0) != n {
		return 0, 0, fmt.Errorf("x0 has %d entries, n=%d: %w", len(p.X0), n, ErrBadProblem)
	}
	return n, w, nil
}

// Solve runs the backward Riccati recursion and the forward rollout.
func Solve(p *Problem) (*Solution, error) {
	n, w, err := p.dims()
	if err != nil {
		return nil, err
	}
	a := p.A
	if a == nil {
		a = linalg.Identity(n)
	}
	b := p.B
	if b == nil {
		b = linalg.Identity(n)
	}

	// Backward pass. Value-to-go after stage t is
	// V_t(x) = xᵀP_t x + 2 q_tᵀ x + const, with V_W ≡ 0.
	gains := make([]*linalg.Matrix, w)
	offsets := make([]linalg.Vector, w)
	pMat := linalg.NewMatrix(n, n) // P_W = 0
	qVec := linalg.NewVector(n)    // q_W = 0
	for t := w - 1; t >= 0; t-- {
		// M = Q + P_{t+1}; bb = −Q·r_{t+1} + q_{t+1}.
		m := p.Q.Clone()
		if err := m.AddScaled(1, pMat); err != nil {
			return nil, err
		}
		bb := linalg.NewVector(n)
		if err := p.Q.MulVec(p.Targets[t], bb); err != nil {
			return nil, err
		}
		bb.Scale(-1)
		if err := bb.AXPY(1, qVec); err != nil {
			return nil, err
		}

		// S = (R + BᵀMB)⁻¹; K = S BᵀMA; k = S Bᵀbb.
		mb, err := linalg.Mul(m, b)
		if err != nil {
			return nil, err
		}
		btmb, err := linalg.Mul(b.T(), mb)
		if err != nil {
			return nil, err
		}
		if err := btmb.AddScaled(1, p.R); err != nil {
			return nil, err
		}
		chol, err := linalg.NewCholesky(btmb)
		if err != nil {
			return nil, fmt.Errorf("stage %d: R+BᵀMB not PD: %w", t, ErrBadProblem)
		}
		ma, err := linalg.Mul(m, a)
		if err != nil {
			return nil, err
		}
		btma, err := linalg.Mul(b.T(), ma)
		if err != nil {
			return nil, err
		}
		kMat, err := chol.SolveMatrix(btma)
		if err != nil {
			return nil, err
		}
		btb := linalg.NewVector(n)
		if err := b.MulVecT(bb, btb); err != nil {
			return nil, err
		}
		kVec := linalg.NewVector(n)
		if err := chol.Solve(btb, kVec); err != nil {
			return nil, err
		}
		gains[t] = kMat
		offsets[t] = kVec

		// Closed loop: Ā = A − B K; d = −B k.
		bk, err := linalg.Mul(b, kMat)
		if err != nil {
			return nil, err
		}
		abar := a.Clone()
		if err := abar.AddScaled(-1, bk); err != nil {
			return nil, err
		}
		d := linalg.NewVector(n)
		if err := b.MulVec(kVec, d); err != nil {
			return nil, err
		}
		d.Scale(-1)

		// P_t = KᵀRK + ĀᵀMĀ ; q_t = KᵀRk + Āᵀ(M d + bb).
		rk, err := linalg.Mul(p.R, kMat)
		if err != nil {
			return nil, err
		}
		ktrk, err := linalg.Mul(kMat.T(), rk)
		if err != nil {
			return nil, err
		}
		mabar, err := linalg.Mul(m, abar)
		if err != nil {
			return nil, err
		}
		atma, err := linalg.Mul(abar.T(), mabar)
		if err != nil {
			return nil, err
		}
		if err := atma.AddScaled(1, ktrk); err != nil {
			return nil, err
		}
		pMat = atma

		md := linalg.NewVector(n)
		if err := m.MulVec(d, md); err != nil {
			return nil, err
		}
		if err := md.AXPY(1, bb); err != nil {
			return nil, err
		}
		newQ := linalg.NewVector(n)
		if err := abar.MulVecT(md, newQ); err != nil {
			return nil, err
		}
		rkv := linalg.NewVector(n)
		if err := p.R.MulVec(kVec, rkv); err != nil {
			return nil, err
		}
		tmp := linalg.NewVector(n)
		if err := kMat.MulVecT(rkv, tmp); err != nil {
			return nil, err
		}
		if err := newQ.AXPY(1, tmp); err != nil {
			return nil, err
		}
		qVec = newQ
	}

	// Forward rollout.
	sol := &Solution{
		U:       make([]linalg.Vector, w),
		X:       make([]linalg.Vector, w),
		Gains:   gains,
		Offsets: offsets,
	}
	x := p.X0.Clone()
	for t := 0; t < w; t++ {
		u := linalg.NewVector(n)
		if err := gains[t].MulVec(x, u); err != nil {
			return nil, err
		}
		if err := u.AXPY(1, offsets[t]); err != nil {
			return nil, err
		}
		u.Scale(-1) // u = −Kx − k
		ax := linalg.NewVector(n)
		if err := a.MulVec(x, ax); err != nil {
			return nil, err
		}
		bu := linalg.NewVector(n)
		if err := b.MulVec(u, bu); err != nil {
			return nil, err
		}
		if err := x.Add(ax, bu); err != nil {
			return nil, err
		}
		sol.U[t] = u
		sol.X[t] = x.Clone()

		// Accumulate cost.
		ru := linalg.NewVector(n)
		if err := p.R.MulVec(u, ru); err != nil {
			return nil, err
		}
		uru, err := linalg.Dot(u, ru)
		if err != nil {
			return nil, err
		}
		diff := x.Clone()
		if err := diff.AXPY(-1, p.Targets[t]); err != nil {
			return nil, err
		}
		qd := linalg.NewVector(n)
		if err := p.Q.MulVec(diff, qd); err != nil {
			return nil, err
		}
		dqd, err := linalg.Dot(diff, qd)
		if err != nil {
			return nil, err
		}
		sol.Cost += uru + dqd
	}
	return sol, nil
}

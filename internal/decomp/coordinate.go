package decomp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"dspp/internal/core"
	"dspp/internal/parallel"
	"dspp/internal/qp"
	"dspp/internal/telemetry"
)

// Options configures the decomposition layer.
type Options struct {
	// MaxShardSize caps locations per shard (0 = connected components
	// only, however large).
	MaxShardSize int
	// BypassBelow skips decomposition entirely for instances with fewer
	// locations (default 32): at that size the monolithic session is
	// faster than any coordination round-trip, and the partition isn't
	// worth building to find that out.
	BypassBelow int
	// BypassRatio is the cost-model threshold behind the controller's
	// monolithic bypass: decomposition is skipped when the modeled cost
	// of the coordinated solve reaches this fraction of one monolithic
	// solve (default 0.9; see DecideBypass). Unlike BypassBelow it sees
	// the actual partition — shard sizes, shared-DC fraction, expected
	// rounds — so a two-shard split of a densely shared instance bypasses
	// while an eight-shard split of the same instance decomposes.
	// Negative disables the model: any multi-shard partition decomposes
	// (tests and benchmarks that must exercise coordination use this).
	BypassRatio float64
	// MaxRounds bounds the dual-price coordination loop per MPC step
	// (default 20).
	MaxRounds int
	// Tol is the ε-stability cutoff: the loop stops once no shard's
	// horizon cost moved by more than Tol relative between rounds
	// (default 5e-3).
	Tol float64
	// Alpha is the quota transfer step in (0, 1] (default 0.5).
	Alpha float64
	// MinQuotaFrac floors each shard's share of a shared DC's capacity
	// at MinQuotaFrac·C/|shards| (default 1e-3), keeping every
	// sub-instance's capacity vector strictly positive.
	MinQuotaFrac float64
	// UsageMargin is the headroom an unconstrained shard keeps above its
	// planned peak when donating quota (default 0.05).
	UsageMargin float64
	// Workers bounds the per-round parallel shard solves (≤ 0 means
	// GOMAXPROCS).
	Workers int
	// QP configures the per-shard interior-point solver (zero value =
	// solver defaults).
	QP qp.Options
	// Telemetry, when non-nil, receives coordinate spans, the
	// dspp_decomp_shards gauge, dspp_coordination_rounds_total, and the
	// per-shard QP solver counters.
	Telemetry *telemetry.Hub
	// NoFallback disables the monolithic-fallback rung: a coordination
	// loop that exhausts MaxRounds returns its (feasible) last iterate
	// with Converged=false, and shard solve failures surface as errors.
	// Benchmarks use it to time pure coordination.
	NoFallback bool
	// NoIncremental disables dirty-shard scheduling: every coordination
	// round re-solves every shard, bitwise identical to the pre-
	// incremental loop. The incremental default skips shards whose
	// capacities moved less than DirtyTol since their last solve (and
	// whose carried plan stays feasible under any shrink), then re-solves
	// every skipped-but-stale shard in a verify round before Converged is
	// reported — the ε-stability contract is unchanged, but the exact
	// float trajectory is not, hence this escape hatch.
	NoIncremental bool
	// DirtyTol is the relative capacity movement beyond which a shard is
	// re-solved in a coordination round (default 1e-3). Shards whose
	// quotas moved less keep their previous plan, cost, and duals for the
	// round; a quota shrink that would cut into the carried plan's peak
	// usage always re-solves regardless of the tolerance, so every
	// gathered iterate stays capacity-feasible.
	DirtyTol float64
	// RankK routes dirty-shard re-solves whose demand/price/state inputs
	// are bitwise unchanged since the shard's last full solve through the
	// session capacity fast path: slack-carried H-row perturbations plus
	// a rank-k factorization update and a continued iterate instead of a
	// warm restart (see core.HorizonSession.ResolveCapacitiesCtx). The
	// fast path agrees with the full solve to rounding (~1e-10 relative),
	// not bit for bit — opt-in, mirroring qp.SessionOptions.RankK. Any
	// numerical trouble falls back to the full warm solve automatically.
	RankK bool
	// PeriodCarryTol enables cross-period delta reuse: a shard whose
	// demand/price/state inputs accumulated less than this relative
	// movement since its last solve is carried across the MPC period
	// boundary — it holds its allocation (zero applied control), keeps
	// its plan, cost, and duals, and the round loop starts from the
	// quota-induced dirty set instead of all shards. 0 disables
	// (default): every period starts by re-solving every shard.
	PeriodCarryTol float64
}

func (o Options) withDefaults() Options {
	if o.BypassBelow <= 0 {
		o.BypassBelow = 32
	}
	if o.BypassRatio == 0 {
		o.BypassRatio = 0.9
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 20
	}
	if o.Tol <= 0 {
		o.Tol = 5e-3
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.5
	}
	if o.MinQuotaFrac <= 0 {
		o.MinQuotaFrac = 1e-3
	}
	if o.UsageMargin <= 0 {
		o.UsageMargin = 0.05
	}
	if o.DirtyTol <= 0 {
		o.DirtyTol = 1e-3
	}
	if o.Telemetry != nil {
		o.QP.Hooks = o.Telemetry.QPHooks()
	}
	return o
}

// regionShard is one region's solver state: the sub-instance over its
// (locations × reachable DCs) block, a persistent HorizonSession, and
// pre-allocated scatter buffers refilled every solve.
type regionShard struct {
	locs, dcs []int
	sub       *core.Instance
	ses       *core.HorizonSession
	// caps is the live capacity vector handed to the sub-instance:
	// exclusive DCs carry the parent's full capacity, shared DCs the
	// current quota.
	caps []float64
	// Scatter buffers (refilled per solve/period).
	x0             core.State
	demand, prices [][]float64
	// Warm chaining: shift 1 on a period's first round (receding
	// horizon), 0 on later rounds (same window, new quotas).
	warm      *core.HorizonWarm
	warmShift int
	plan      *core.Plan
	// dualBuf receives the horizon-summed capacity duals per local DC.
	dualBuf        []float64
	cost, prevCost float64
	capsDirty      bool
	// hit marks that this shard's latest solve was stopped by the period
	// deadline and contributed a projected anytime iterate rather than a
	// converged plan. Written only by the shard's own round worker.
	hit bool

	// Incremental-coordination state. solvedCaps is the capacity vector
	// the shard's current plan was solved under; planPeak its peak
	// per-step usage per local DC — together they decide whether a quota
	// movement can be absorbed without a re-solve (see classify).
	solvedCaps []float64
	planPeak   []float64
	stale      bool // caps differ at all from solvedCaps
	dirty      bool // caps moved beyond DirtyTol, or shrank into the plan
	// fastOK marks the session's standing problem data (C, the demand and
	// nonnegativity rows of H, x0) as bitwise identical to the scatter
	// buffers — the precondition for the capacity-only fast resolve.
	fastOK bool
	// fastLast marks the latest solve as served by the fast path; summed
	// serially after each round (the workers never share counters).
	fastLast bool
	// drift accumulates the relative movement of the shard's inputs since
	// its last solve; periodsHeld counts whole MPC periods the shard was
	// carried, so a later solve warm-shifts by periodsHeld+1.
	drift       float64
	periodsHeld int
	// solved marks the shard as solved at least once in the current
	// SolveCtx call; lastRound is the round index of its latest solve.
	solved    bool
	lastRound int
}

// updatePlanPeak recomputes the plan's peak per-step total usage per
// local DC. Called by the shard's own round worker after each solve.
func (r *regionShard) updatePlanPeak() {
	for i := range r.planPeak {
		r.planPeak[i] = 0
	}
	for _, x := range r.plan.X {
		for i, row := range x {
			var tot float64
			for _, xv := range row {
				tot += xv
			}
			if tot > r.planPeak[i] {
				r.planPeak[i] = tot
			}
		}
	}
}

// needTerm weights one location's demand in a shard's initial-quota
// estimate: w = a_lv/|F(v)| converts the location's forecast demand into
// the servers this DC would host if the location split evenly across its
// feasible DCs.
type needTerm struct {
	v int
	w float64
}

// member is one shard's stake in a shared DC.
type member struct {
	shard, localDC int
	needW          []needTerm
	// minW lists the shard locations whose globally most efficient
	// (lowest-a) DC is this one. Their min-server load is the shard's
	// feasibility floor on the quota: as long as every member keeps at
	// least that much, the min-server assignment — which the parent
	// instance admits whenever it is feasible at all — restricts to a
	// feasible point of every shard sub-instance, so no quota split can
	// ever hand a shard an infeasible QP.
	minW []needTerm
}

// sharedDC is a capacitated DC reachable from several shards: its
// capacity is divided into per-shard quotas that the coordination loop
// re-prices each round. Quotas persist across MPC periods (warm prices).
type sharedDC struct {
	global  int
	cap     float64
	members []member
	quota   []float64
	need    []float64 // scratch
	// minQ[i] is member i's feasibility floor for the current forecasts,
	// recomputed each solve from the members' minW terms.
	minQ []float64
}

// Solver runs the sharded solve for one (instance, horizon) pair. Not
// safe for concurrent use; the parallelism is internal (per-round shard
// fan-out).
type Solver struct {
	inst *core.Instance
	w    int
	opt  Options
	part *Partition

	shards []*regionShard
	shared []*sharedDC

	quotasInit bool
	solveBuf   []int // current round's solve set (shard indices)
	// updRound numbers the quota-update steps feeding the diminishing-step
	// schedule. It restarts every period — except under cross-period carry
	// when the external forecasts are quiescent, where it keeps counting:
	// resetting the step to full strength on an unchanged forecast would
	// re-kick quotas that are already settling, and the trajectory would
	// never become still enough to carry.
	updRound    int
	coordRounds *telemetry.Counter
	shardSolves *telemetry.Counter
	shardsSkip  *telemetry.Counter
	fastCount   *telemetry.Counter
	dirtyFrac   *telemetry.Histogram
}

// Solution is one coordinated horizon solve.
type Solution struct {
	// Applied is the global first-step control; State the allocation
	// after applying it. Both are freshly allocated per solve.
	Applied core.State
	State   core.State
	// Objective is the exact global horizon objective: pairs partition
	// across shards, so it is the plain sum of shard objectives.
	Objective float64
	// Rounds is the number of coordination rounds used; Converged
	// reports whether the loop met the ε-stability cutoff in budget.
	Rounds    int
	Converged bool
	// DeadlineHit reports that the context deadline stopped the loop
	// between rounds: the solution is the last complete (feasible)
	// iterate, just not ε-stable. Mutually exclusive with Converged.
	DeadlineHit bool
	// Partial reports that the deadline fired inside the final round, so
	// at least one shard contributed a projected anytime iterate instead
	// of a converged plan. The gathered solution is capacity-feasible
	// (every anytime plan is projected onto its quota) but may under-serve
	// demand — the same contract as the monolithic solver's anytime rung.
	// When DeadlineHit is set without Partial, the iterate additionally
	// satisfies all demand constraints.
	Partial bool
	// QPIterations/ColdRestarts aggregate the shard solves.
	QPIterations int
	ColdRestarts int
	// ShardSolves counts shard QP solves across all rounds;
	// SkippedShards counts shard-rounds skipped by dirty scheduling
	// (ShardSolves + SkippedShards = Rounds × shard count).
	ShardSolves   int
	SkippedShards int
	// FastResolves counts shard solves served by the rank-k capacity
	// fast path (≤ ShardSolves; zero unless Options.RankK).
	FastResolves int
	// HeldShards counts shards carried across the period boundary by
	// cross-period delta reuse: they held their allocation (zero applied
	// control) and were never re-solved this call.
	HeldShards int
	// CapacityDuals retains the final round's horizon-summed capacity
	// dual price per global DC — for a shared DC the max over member
	// shards (at convergence the constrained members' prices agree; the
	// max is the marginal value of one more server there). Before this
	// was surfaced the duals died with the round loop, so attribution
	// could not see which constraints were binding under the quotas
	// actually applied.
	CapacityDuals []float64
	// Quotas is the capacity the coordinated solve actually enforced per
	// DC: the live quota split total for shared managed DCs (== the live
	// capacity), the live capacity for exclusive and uncapacitated DCs.
	Quotas []float64
	// ShardOfDC maps each DC to its owning shard, -1 when the DC is
	// shared across shards (quota-managed).
	ShardOfDC []int
}

// DirtyFraction is the share of shard-rounds that were actually solved
// (1 with incremental scheduling off or when no rounds ran).
func (s *Solution) DirtyFraction() float64 {
	total := s.ShardSolves + s.SkippedShards
	if total == 0 {
		return 1
	}
	return float64(s.ShardSolves) / float64(total)
}

// NewSolver builds the per-shard sub-instances and sessions for the given
// partition. The partition must come from NewPartition on the same
// instance.
func NewSolver(inst *core.Instance, horizon int, part *Partition, opt Options) (*Solver, error) {
	if inst == nil || part == nil {
		return nil, fmt.Errorf("nil instance or partition: %w", ErrBadConfig)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadConfig)
	}
	opt = opt.withDefaults()
	s := &Solver{inst: inst, w: horizon, opt: opt, part: part}
	if reg := opt.Telemetry.Registry(); reg != nil {
		s.coordRounds = reg.Counter(telemetry.MetricCoordinationRounds)
		s.shardSolves = reg.Counter(telemetry.MetricShardSolves)
		s.shardsSkip = reg.Counter(telemetry.MetricShardsSkipped)
		s.fastCount = reg.Counter(telemetry.MetricQuotaFastResolves)
		s.dirtyFrac = reg.Histogram(telemetry.MetricRoundDirtyFraction, telemetry.DirtyFractionBuckets)
		reg.Gauge(telemetry.MetricDecompShards).Set(float64(len(part.Shards)))
	}

	// Per-location feasible-DC counts (initial-quota weights) and each
	// location's most efficient DC (quota feasibility floors).
	locFeas := make([]int, inst.NumLocations())
	locCheapest := make([]int, inst.NumLocations())
	var buf []int
	for v := range locFeas {
		buf = inst.FeasibleDCs(v, buf[:0])
		locFeas[v] = len(buf)
		best, bestL := math.Inf(1), -1
		for _, l := range buf {
			a, err := inst.SLACoefficient(l, v)
			if err != nil {
				return nil, err
			}
			if a < best {
				best, bestL = a, l
			}
		}
		locCheapest[v] = bestL
	}

	localIdx := make([]map[int]int, len(part.Shards))
	for i, sh := range part.Shards {
		sub, ses, err := buildShard(inst, sh, horizon, opt.QP, qp.SessionOptions{RankK: opt.RankK})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r := &regionShard{
			locs: sh.Locations, dcs: sh.DCs, sub: sub, ses: ses,
			caps:       sub.Capacities(),
			x0:         sub.NewState(),
			demand:     make([][]float64, horizon),
			prices:     make([][]float64, horizon),
			dualBuf:    make([]float64, len(sh.DCs)),
			solvedCaps: make([]float64, len(sh.DCs)),
			planPeak:   make([]float64, len(sh.DCs)),
			lastRound:  -1,
		}
		for t := 0; t < horizon; t++ {
			r.demand[t] = make([]float64, len(sh.Locations))
			r.prices[t] = make([]float64, len(sh.DCs))
		}
		s.shards = append(s.shards, r)
		localIdx[i] = make(map[int]int, len(sh.DCs))
		for li, gl := range sh.DCs {
			localIdx[i][gl] = li
		}
	}

	// Shared-DC table: capacitated DCs spanning several shards. An
	// uncapacitated shared DC needs no coordination — every shard keeps
	// it at +Inf.
	for _, gl := range part.SharedDCs {
		c, err := inst.Capacity(gl)
		if err != nil {
			return nil, err
		}
		if math.IsInf(c, 1) {
			continue
		}
		sd := &sharedDC{global: gl, cap: c}
		for i, sh := range part.Shards {
			li, ok := localIdx[i][gl]
			if !ok {
				continue
			}
			m := member{shard: i, localDC: li}
			for _, gv := range sh.Locations {
				if !inst.Feasible(gl, gv) {
					continue
				}
				a, err := inst.SLACoefficient(gl, gv)
				if err != nil {
					return nil, err
				}
				m.needW = append(m.needW, needTerm{v: gv, w: a / float64(locFeas[gv])})
				if locCheapest[gv] == gl {
					m.minW = append(m.minW, needTerm{v: gv, w: a})
				}
			}
			sd.members = append(sd.members, m)
		}
		sd.quota = make([]float64, len(sd.members))
		sd.need = make([]float64, len(sd.members))
		sd.minQ = make([]float64, len(sd.members))
		s.shared = append(s.shared, sd)
	}
	return s, nil
}

// buildShard extracts the sub-instance over (sh.DCs × sh.Locations) and
// opens its horizon session. Every feasible pair of a shard location is
// inside the block by construction, so the sub-instance always validates.
func buildShard(inst *core.Instance, sh Shard, horizon int, opts qp.Options, sopts qp.SessionOptions) (*core.Instance, *core.HorizonSession, error) {
	sla := make([][]float64, len(sh.DCs))
	rec := make([]float64, len(sh.DCs))
	caps := make([]float64, len(sh.DCs))
	for i, gl := range sh.DCs {
		row := make([]float64, len(sh.Locations))
		for j, gv := range sh.Locations {
			a, err := inst.SLACoefficient(gl, gv)
			if err != nil {
				return nil, nil, err
			}
			row[j] = a
		}
		sla[i] = row
		var err error
		if rec[i], err = inst.ReconfigWeight(gl); err != nil {
			return nil, nil, err
		}
		if caps[i], err = inst.Capacity(gl); err != nil {
			return nil, nil, err
		}
	}
	sub, err := core.NewInstance(core.Config{SLA: sla, ReconfigWeights: rec, Capacities: caps})
	if err != nil {
		return nil, nil, err
	}
	ses, err := sub.NewHorizonSessionOpts(horizon, opts, sopts)
	if err != nil {
		return nil, nil, err
	}
	return sub, ses, nil
}

// Shards returns the shard count.
func (s *Solver) Shards() int { return len(s.shards) }

// Partition returns the partition the solver was built on.
func (s *Solver) Partition() *Partition { return s.part }

// Reset drops the per-shard warm starts (after an external state change).
// Quota prices persist: they track capacity congestion, not trajectory.
func (s *Solver) Reset() {
	for _, r := range s.shards {
		r.warm = nil
		r.plan = nil
		r.cost, r.prevCost = 0, 0
		r.fastOK = false
		r.drift = math.Inf(1)
		r.periodsHeld = 0
		r.hit = false
	}
	s.updRound = 0
}

// SolveCtx runs one coordinated horizon solve from x0: scatter the
// forecasts, solve every shard in parallel under the current quotas, and
// re-price shared capacity until shard costs are ε-stable or the round
// budget runs out. The returned solution is feasible for the full
// instance at every iterate — quotas partition capacity, so aggregate
// usage can never exceed it; budget exhaustion costs optimality, not
// feasibility.
func (s *Solver) SolveCtx(ctx context.Context, x0 core.State, demand, prices [][]float64) (*Solution, error) {
	if err := s.inst.CheckState(x0); err != nil {
		return nil, err
	}
	if len(demand) < s.w || len(prices) < s.w {
		return nil, fmt.Errorf("forecasts cover %d/%d periods, horizon %d: %w",
			len(demand), len(prices), s.w, core.ErrBadInput)
	}

	// Scatter the period's inputs into every shard's buffers, tracking the
	// relative movement against what the buffers held: any bitwise change
	// disarms the capacity fast path, and the accumulated drift decides
	// cross-period carry eligibility. The external part of the movement —
	// demand and prices, the inputs the controller doesn't cause — is kept
	// separately: it gates whether the quota damping schedule persists
	// across the period boundary.
	var extMove float64
	for _, r := range s.shards {
		var ext float64
		for j, gv := range r.locs {
			for t := 0; t < s.w; t++ {
				ext = relMove(ext, r.demand[t][j], demand[t][gv])
				r.demand[t][j] = demand[t][gv]
			}
		}
		for i, gl := range r.dcs {
			for t := 0; t < s.w; t++ {
				ext = relMove(ext, r.prices[t][i], prices[t][gl])
				r.prices[t][i] = prices[t][gl]
			}
		}
		move := ext
		for i, gl := range r.dcs {
			for j, gv := range r.locs {
				move = relMove(move, r.x0[i][j], x0[gl][gv])
				r.x0[i][j] = x0[gl][gv]
			}
		}
		if move > 0 {
			r.fastOK = false
			r.drift += move
		}
		if ext > extMove {
			extMove = ext
		}
		r.warmShift = r.periodsHeld + 1
		r.solved = false
		r.lastRound = -1
	}
	first := !s.quotasInit
	s.refreshCapacities()
	s.computeQuotaFloors(demand)
	if first {
		s.initQuotas(demand[0])
		s.quotasInit = true
	} else {
		// Warm quotas from the previous period may sit below the new
		// forecasts' floors; re-floor before the first round.
		for _, sd := range s.shared {
			s.floorAndRenormalize(sd)
		}
	}
	s.applyQuotas()

	// The period's initial solve set: everything on the first solve or
	// with incremental scheduling off; otherwise every shard whose inputs
	// moved beyond the carry tolerance (or that has no plan to carry),
	// plus the quota-dirty ones. With carry off the set is all shards —
	// the inputs changed, so every plan is a period stale.
	incremental := !s.opt.NoIncremental
	carry := incremental && s.opt.PeriodCarryTol > 0 && !first
	if !incremental || extMove > s.opt.DirtyTol {
		// The forecasts moved (or incremental scheduling is off): the quota
		// step restarts at full strength for the new conditions. Under an
		// unchanged forecast the diminishing-step schedule continues across
		// the period boundary, so the re-division settles — quota movements
		// fall below DirtyTol, rounds start skipping clean shards, and with
		// carry enabled whole periods eventually hold — instead of
		// re-kicking every period at full step.
		s.updRound = 0
	}
	s.classify()
	solve := s.solveBuf[:0]
	for i, r := range s.shards {
		need := true
		if carry {
			// Sub-tolerance quota staleness does not force a solve here:
			// classify's feasibility rule already re-solves any shrink
			// that cuts into a carried plan, and PeriodCarryTol is the
			// caller's consent to hold an ε-stale coordinated point.
			need = r.dirty || r.hit || r.plan == nil ||
				r.drift > s.opt.PeriodCarryTol
		}
		if need {
			solve = append(solve, i)
		}
	}

	tr := s.opt.Telemetry.Tracer()
	sp := tr.Start(telemetry.SpanCoordinate, telemetry.SpanIDFromContext(ctx),
		telemetry.Num("shards", float64(len(s.shards))))
	ctx = telemetry.ContextWithSpan(ctx, sp)
	defer sp.End()

	sol := &Solution{}
	workers := parallel.Workers(s.opt.Workers, len(s.shards))
	deadline, hasDeadline := ctx.Deadline()
	// Under a period deadline the shard solves run in anytime mode against
	// a deadline-only view of the context: the solver's per-iteration clock
	// check stops each shard within one iteration of the deadline and hands
	// back its best iterate, while the suppressed cancellation keeps the
	// work scheduler from skipping shards outright once the deadline has
	// passed — every shard must contribute an iterate for the gathered
	// round to stay a full partition. Cancellation response degrades by at
	// most the tail of the current (clock-bounded) round.
	solveCtx := ctx
	for _, r := range s.shards {
		r.ses.SetAnytime(hasDeadline)
	}
	if hasDeadline {
		solveCtx = deadlineOnlyCtx{parent: ctx}
	}
	if len(solve) == 0 {
		// Cross-period carry fast exit: no shard's inputs or quotas moved
		// beyond tolerance, so last period's coordinated point stands —
		// every shard holds its allocation without a single QP solve.
		sol.Converged = true
	}
	// verify marks the current round as the must-verify pass: the
	// convergence test held, but some skipped shards' capacities had
	// drifted (below tolerance) from what their plans were solved under.
	// Those shards re-solve at the exact current quotas before Converged
	// is reported, so the ε-stability contract matches the non-
	// incremental loop.
	verify := false
	for round := 0; len(solve) > 0 && round < s.opt.MaxRounds; round++ {
		if err := s.pushCapacitiesFor(solve); err != nil {
			return nil, err
		}
		roundStart := time.Now()
		err := parallel.ForEachCtx(solveCtx, len(solve), workers, func(k int) error {
			return s.solveShard(solveCtx, solve[k], round)
		})
		if err != nil {
			sp.SetAttr(telemetry.Str("outcome", "error"))
			return nil, fmt.Errorf("round %d: %w: %w", round, ErrCoordination, err)
		}
		sol.Rounds++
		sol.ShardSolves += len(solve)
		sol.SkippedShards += len(s.shards) - len(solve)
		s.dirtyFrac.Observe(float64(len(solve)) / float64(len(s.shards)))
		anyHit := false
		for _, k := range solve {
			r := s.shards[k]
			sol.QPIterations += r.plan.QPIterations
			sol.ColdRestarts += r.plan.ColdRestarts
			anyHit = anyHit || r.hit
			if r.fastLast {
				sol.FastResolves++
			}
		}
		if anyHit {
			// The deadline fired inside this round: the gathered iterate
			// is capacity-feasible (every shard contributed, anytime plans
			// are projected) but not ε-stable. Stop here — the convergence
			// test would be comparing partial-solve costs.
			sol.DeadlineHit = true
			sol.Partial = true
			sp.SetAttr(telemetry.Str("outcome", "deadline"))
			break
		}
		if s.converged(round) {
			if incremental && !verify {
				if stale := s.staleShards(solve[:0]); len(stale) > 0 {
					// Must-verify round: re-solve the shards whose plans
					// predate the final quotas, then re-test.
					verify = true
					solve = stale
					continue
				}
			}
			sol.Converged = true
			break
		}
		verify = false
		// Period-deadline respect: every completed round is a feasible
		// iterate (quotas partition capacity), so when the budget is
		// about to run out — or already has — return the current iterate
		// instead of starting a round that cannot finish. The 1.5×
		// last-round margin stops before the deadline fires mid-solve,
		// where only an error could come back.
		if hasDeadline && (ctx.Err() != nil || time.Until(deadline) < time.Since(roundStart)*3/2) {
			sol.DeadlineHit = true
			sp.SetAttr(telemetry.Str("outcome", "deadline"))
			break
		}
		if round == s.opt.MaxRounds-1 {
			break
		}
		s.updateQuotas(s.updRound)
		s.updRound++
		s.applyQuotas()
		if !incremental {
			solve = solve[:0]
			for i := range s.shards {
				solve = append(solve, i)
			}
			continue
		}
		s.classify()
		solve = s.dirtyShards(solve[:0])
		if len(solve) == 0 {
			// The quota update moved nothing beyond tolerance: the loop is
			// at a fixed point of the re-division. Re-solve any stale
			// leftovers as the verify pass, or stop converged outright.
			if stale := s.staleShards(solve); len(stale) > 0 {
				verify = true
				solve = stale
				continue
			}
			sol.Converged = true
			break
		}
	}
	s.solveBuf = solve[:0]
	if s.coordRounds != nil {
		s.coordRounds.Add(float64(sol.Rounds))
	}
	sp.SetAttr(telemetry.Num("rounds", float64(sol.Rounds)),
		telemetry.Str("converged", fmt.Sprintf("%t", sol.Converged)))

	// Gather: pairs partition across shards, so the global first-step
	// control/state and the objective assemble by plain scatter and sum.
	// A shard carried across the period boundary holds its allocation —
	// zero applied control, state unchanged — and contributes its carried
	// plan's objective as the standing cost estimate.
	sol.Applied = s.inst.NewState()
	sol.State = s.inst.NewState()
	// Retain the final round's dual prices and the enforced capacity
	// split: a shard not re-solved in the last round still holds the
	// duals of the plan the gather uses (solveShard refreshes dualBuf and
	// solvedCaps together), so the surfaced prices always correspond to
	// the quotas the gathered solution was actually solved under.
	nDC := s.inst.NumDataCenters()
	sol.CapacityDuals = make([]float64, nDC)
	sol.Quotas = make([]float64, nDC)
	sol.ShardOfDC = make([]int, nDC)
	for l := 0; l < nDC; l++ {
		sol.ShardOfDC[l] = -1
		if c, err := s.inst.Capacity(l); err == nil {
			sol.Quotas[l] = c
		}
	}
	var solves, skips, fasts float64
	for si, r := range s.shards {
		for i, gl := range r.dcs {
			if d := r.dualBuf[i]; d > sol.CapacityDuals[gl] {
				sol.CapacityDuals[gl] = d
			}
			if s.part.DCShards[gl] == 1 {
				sol.ShardOfDC[gl] = si
				sol.Quotas[gl] = r.caps[i]
			}
		}
		if !r.solved {
			for i, gl := range r.dcs {
				for j, gv := range r.locs {
					sol.State[gl][gv] = r.x0[i][j]
				}
			}
			sol.Objective += r.plan.Objective
			sol.HeldShards++
			r.periodsHeld++
			continue
		}
		u0, x1 := r.plan.U[0], r.plan.X[0]
		for i, gl := range r.dcs {
			for j, gv := range r.locs {
				sol.Applied[gl][gv] = u0[i][j]
				sol.State[gl][gv] = x1[i][j]
			}
		}
		sol.Objective += r.plan.Objective
	}
	solves, skips, fasts = float64(sol.ShardSolves), float64(sol.SkippedShards), float64(sol.FastResolves)
	s.shardSolves.Add(solves)
	s.shardsSkip.Add(skips + float64(sol.HeldShards))
	s.fastCount.Add(fasts)
	return sol, nil
}

// relMove folds |to−from| relative to max(1, |from|) into the running
// maximum — the scatter-time movement estimate feeding fastOK and the
// cross-period drift.
func relMove(cur, from, to float64) float64 {
	d := to - from
	if d < 0 {
		d = -d
	}
	den := from
	if den < 0 {
		den = -den
	}
	if den < 1 {
		den = 1
	}
	if rel := d / den; rel > cur {
		return rel
	}
	return cur
}

// solveShard runs one shard's solve for the given round: the capacity
// fast path when armed (RankK on, inputs bitwise unchanged, standing
// converged solve), the full warm session solve otherwise, with the same
// anytime-projection contract either way. Runs on the round workers;
// touches only shard-local state.
func (s *Solver) solveShard(ctx context.Context, i, round int) error {
	r := s.shards[i]
	r.hit = false
	r.fastLast = false
	sp := s.opt.Telemetry.Tracer().Start(telemetry.SpanShardSolve, telemetry.SpanIDFromContext(ctx),
		telemetry.Num("shard", float64(i)), telemetry.Num("round", float64(round)))
	ctx = telemetry.ContextWithSpan(ctx, sp)
	defer sp.End()
	var plan *core.Plan
	var err error
	if s.opt.RankK && r.fastOK && r.ses.CanResolveCapacities() {
		plan, err = r.ses.ResolveCapacitiesCtx(ctx)
		if err == nil || (plan != nil && errors.Is(err, qp.ErrDeadline)) {
			r.fastLast = true
		} else {
			// Numerical trouble on the continuation: fall back to the full
			// warm solve, which refills the problem vectors from scratch.
			plan, err = nil, nil
		}
	}
	if plan == nil && err == nil {
		plan, err = r.ses.SolveCtx(ctx, core.HorizonInput{
			X0: r.x0, Demand: r.demand, Prices: r.prices,
			Warm: r.warm, WarmShift: r.warmShift,
		})
	}
	if err != nil {
		if plan == nil || !errors.Is(err, qp.ErrDeadline) {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		// Deadline-stopped shard: its best iterate, projected onto the
		// shard's capacity quota, is this round's contribution. Quotas
		// partition the shared capacity, so the gathered global state
		// stays feasible.
		r.sub.ProjectPlanCapacity(plan, r.x0, r.prices)
		r.hit = true
	}
	r.plan = plan
	r.warm = plan.Warm
	r.warmShift = 0
	r.periodsHeld = 0
	r.prevCost, r.cost = r.cost, plan.Objective
	plan.TotalCapacityDualsInto(r.dualBuf)
	copy(r.solvedCaps, r.caps)
	r.updatePlanPeak()
	r.solved = true
	r.lastRound = round
	r.drift = 0
	r.fastOK = err == nil
	fast := 0.0
	if r.fastLast {
		fast = 1
	}
	sp.SetAttr(telemetry.Num("iterations", float64(plan.QPIterations)),
		telemetry.Num("fast", fast))
	return nil
}

// classify recomputes every shard's stale/dirty flags against the
// capacities its current plan was solved under. A shard is stale when any
// capacity differs at all, and dirty when the movement exceeds DirtyTol
// relative — or when a shrink cuts below the carried plan's peak usage on
// that DC, which would break the feasibility of the gathered iterate and
// therefore always re-solves.
func (s *Solver) classify() {
	tol := s.opt.DirtyTol
	for _, r := range s.shards {
		r.stale, r.dirty = false, false
		if r.plan == nil {
			r.dirty = true
			continue
		}
		for i := range r.caps {
			c, old := r.caps[i], r.solvedCaps[i]
			if c == old {
				continue
			}
			r.stale = true
			den := math.Abs(old)
			if den < 1 {
				den = 1
			}
			if math.Abs(c-old) > tol*den || (c < old && r.planPeak[i] > c) {
				r.dirty = true
				break
			}
		}
	}
}

// dirtyShards appends the indices of dirty shards (per classify) to dst.
func (s *Solver) dirtyShards(dst []int) []int {
	for i, r := range s.shards {
		if r.dirty {
			dst = append(dst, i)
		}
	}
	return dst
}

// staleShards appends the indices of shards whose current capacities
// differ at all from what their plan was solved under — the verify-round
// set. Recomputed directly (not from classify's flags) because solves
// since the last classification refresh solvedCaps.
func (s *Solver) staleShards(dst []int) []int {
	for i, r := range s.shards {
		if r.plan == nil {
			dst = append(dst, i)
			continue
		}
		for k := range r.caps {
			if r.caps[k] != r.solvedCaps[k] {
				dst = append(dst, i)
				break
			}
		}
	}
	return dst
}

// converged implements the stability test: no coupling, no binding
// shared capacity anywhere, or every shard's cost ε-stable vs the
// previous round.
func (s *Solver) converged(round int) bool {
	if len(s.shared) == 0 {
		return true
	}
	var maxDual float64
	for _, sd := range s.shared {
		for _, m := range sd.members {
			if d := s.shards[m.shard].dualBuf[m.localDC]; d > maxDual {
				maxDual = d
			}
		}
	}
	if maxDual <= 1e-9 {
		// Quotas bind nowhere: every shard is at its unconstrained
		// optimum, so the assembled solution is globally optimal.
		return true
	}
	if round == 0 {
		return false
	}
	for _, r := range s.shards {
		// Only shards re-solved this round have a meaningful cost delta;
		// a skipped shard's inputs didn't move, so its cost is stable by
		// construction (with incremental scheduling off every shard
		// solves every round and this test is the original one).
		if r.lastRound != round {
			continue
		}
		if math.Abs(r.cost-r.prevCost) > s.opt.Tol*math.Max(1, math.Abs(r.cost)) {
			return false
		}
	}
	return true
}

// refreshCapacities re-reads the parent instance's capacities (fault
// schedules move them between periods): exclusive DCs take the live value
// directly, shared DCs rescale their quota split to the new total.
func (s *Solver) refreshCapacities() {
	for _, r := range s.shards {
		for i, gl := range r.dcs {
			if s.part.DCShards[gl] > 1 {
				continue // quota-managed (or uncapacitated-shared: set below)
			}
			if c, err := s.inst.Capacity(gl); err == nil && c != r.caps[i] {
				r.caps[i] = c
				r.capsDirty = true
			}
		}
	}
	for _, sd := range s.shared {
		c, err := s.inst.Capacity(sd.global)
		if err != nil || c == sd.cap {
			continue
		}
		if s.quotasInit && sd.cap > 0 {
			scale := c / sd.cap
			for i := range sd.quota {
				sd.quota[i] *= scale
			}
		}
		sd.cap = c
	}
	// Uncapacitated shared DCs never made it into s.shared; keep their
	// +Inf entries in sync (they never change, SetCapacities forbids it).
}

// computeQuotaFloors refreshes every member's feasibility floor for the
// current forecasts: the peak-over-horizon min-server load of the shard
// locations anchored (lowest-a) on the shared DC, plus a hair of headroom
// so the shard QP keeps a strict interior. Whenever the parent instance is
// feasible under the min-server assignment, the floors sum below capacity
// — so flooring never conflicts with the quota split adding up to C.
func (s *Solver) computeQuotaFloors(demand [][]float64) {
	for _, sd := range s.shared {
		for i, m := range sd.members {
			var peak float64
			for t := 0; t < s.w; t++ {
				var load float64
				for _, term := range m.minW {
					load += term.w * demand[t][term.v]
				}
				if load > peak {
					peak = load
				}
			}
			sd.minQ[i] = peak * (1 + 1e-9)
		}
	}
}

// initQuotas seeds the quota split of every shared DC proportionally to
// each shard's estimated server need at the first forecast step.
func (s *Solver) initQuotas(demand0 []float64) {
	for _, sd := range s.shared {
		var total float64
		for i, m := range sd.members {
			var need float64
			for _, t := range m.needW {
				need += t.w * demand0[t.v]
			}
			sd.need[i] = need
			total += need
		}
		for i := range sd.quota {
			if total > 0 {
				sd.quota[i] = sd.cap * sd.need[i] / total
			} else {
				sd.quota[i] = sd.cap / float64(len(sd.members))
			}
		}
		s.floorAndRenormalize(sd)
	}
}

// Diminishing-step schedule for the quota transfers: after quotaDampAfter
// update steps the step shrinks geometrically by quotaDampFactor per
// step. On densely shared capacity (many shards per DC) donor/receiver
// roles can oscillate under a fixed step; the shrinking step forces the
// shard costs to settle inside the ε-stability cutoff, the same reason
// subgradient dual methods use diminishing step sizes. The step index
// (Solver.updRound) restarts every period, except across quiescent
// period boundaries under cross-period carry — see SolveCtx.
const (
	quotaDampAfter  = 8
	quotaDampFactor = 0.8
)

// updateQuotas is the dual-price re-division, run between rounds: shards
// whose quota is slack (zero capacity dual) donate α of their surplus
// above planned peak usage, and the pool is granted to constrained shards
// in proportion to their duals — the same price-proportional redivision
// as the paper's Algorithm-2 quota machinery, made zero-sum so aggregate
// capacity is conserved at every iterate. When every shard is constrained
// the split blends toward fully dual-proportional instead.
func (s *Solver) updateQuotas(round int) {
	alpha := s.opt.Alpha
	if round >= quotaDampAfter {
		alpha *= math.Pow(quotaDampFactor, float64(round-quotaDampAfter+1))
	}
	for _, sd := range s.shared {
		var maxDual, sumDual float64
		for i, m := range sd.members {
			d := s.shards[m.shard].dualBuf[m.localDC]
			sd.need[i] = d // reuse scratch as the dual snapshot
			if d > maxDual {
				maxDual = d
			}
			sumDual += d
		}
		if maxDual <= 1e-12 {
			continue
		}
		eps := 1e-6 * maxDual
		var pool, sumConstrained float64
		for i := range sd.members {
			if sd.need[i] > eps {
				sumConstrained += sd.need[i]
			}
		}
		for i, m := range sd.members {
			if sd.need[i] > eps {
				continue
			}
			peak := s.shardPeakUsage(m)
			slack := sd.quota[i] - peak*(1+s.opt.UsageMargin)
			if slack > 0 {
				give := alpha * slack
				sd.quota[i] -= give
				pool += give
			}
		}
		if pool > 0 {
			for i := range sd.members {
				if sd.need[i] > eps {
					sd.quota[i] += pool * sd.need[i] / sumConstrained
				}
			}
		} else {
			for i := range sd.members {
				sd.quota[i] = (1-alpha)*sd.quota[i] + alpha*sd.cap*sd.need[i]/sumDual
			}
		}
		s.floorAndRenormalize(sd)
	}
}

// shardPeakUsage returns the largest planned per-step total allocation on
// the member's DC across the horizon.
func (s *Solver) shardPeakUsage(m member) float64 {
	plan := s.shards[m.shard].plan
	var peak float64
	for _, x := range plan.X {
		var tot float64
		for _, xv := range x[m.localDC] {
			tot += xv
		}
		if tot > peak {
			peak = tot
		}
	}
	return peak
}

// floorAndRenormalize clamps every quota to its floor — the larger of the
// member's feasibility floor and the strictly-positive MinQuotaFrac share
// — then renormalizes only the surplus above the floors, so the split
// sums exactly to capacity without ever dipping below what any shard
// needs to stay feasible. If the floors alone exceed capacity (the parent
// instance itself is infeasible for these forecasts), the floors are
// scaled down proportionally and the shard QPs surface the infeasibility.
func (s *Solver) floorAndRenormalize(sd *sharedDC) {
	frac := s.opt.MinQuotaFrac * sd.cap / float64(len(sd.quota))
	var floorSum, surplus float64
	for i := range sd.quota {
		f := sd.minQ[i]
		if f < frac {
			f = frac
		}
		if sd.quota[i] < f {
			sd.quota[i] = f
		}
		floorSum += f
		surplus += sd.quota[i] - f
	}
	if floorSum >= sd.cap {
		scale := sd.cap / floorSum
		for i := range sd.quota {
			f := sd.minQ[i]
			if f < frac {
				f = frac
			}
			sd.quota[i] = f * scale
		}
		return
	}
	if surplus > 0 {
		scale := (sd.cap - floorSum) / surplus
		for i := range sd.quota {
			f := sd.minQ[i]
			if f < frac {
				f = frac
			}
			sd.quota[i] = f + (sd.quota[i]-f)*scale
		}
		return
	}
	// No surplus anywhere: hand the spare capacity out evenly.
	spare := (sd.cap - floorSum) / float64(len(sd.quota))
	for i := range sd.quota {
		f := sd.minQ[i]
		if f < frac {
			f = frac
		}
		sd.quota[i] = f + spare
	}
}

// applyQuotas writes the current quota split into the owning shards'
// capacity vectors.
func (s *Solver) applyQuotas() {
	for _, sd := range s.shared {
		for i, m := range sd.members {
			r := s.shards[m.shard]
			if r.caps[m.localDC] != sd.quota[i] {
				r.caps[m.localDC] = sd.quota[i]
				r.capsDirty = true
			}
		}
	}
}

// pushCapacitiesFor flushes dirty capacity vectors into the sub-instances
// of the shards about to be solved. Skipped shards keep their sub-instance
// at the capacities their plan was solved under (capsDirty stays set), so
// a later verify-round solve pushes the accumulated movement then.
func (s *Solver) pushCapacitiesFor(idxs []int) error {
	for _, i := range idxs {
		r := s.shards[i]
		if !r.capsDirty {
			continue
		}
		if err := r.sub.SetCapacities(r.caps); err != nil {
			return fmt.Errorf("shard %d capacities: %w", i, err)
		}
		r.capsDirty = false
	}
	return nil
}

// deadlineOnlyCtx exposes its parent's deadline while never reporting
// cancellation. Shard solves in a deadline-bounded round run against this
// view: the QP solver's per-iteration clock check (which reads Deadline())
// still stops each solve on time with an anytime iterate, but the work
// scheduler's Err() pre-checks can't skip shards whose turn comes after
// the deadline — a gathered round needs every shard's contribution to
// remain a full partition of the instance.
type deadlineOnlyCtx struct{ parent context.Context }

func (d deadlineOnlyCtx) Deadline() (time.Time, bool) { return d.parent.Deadline() }
func (d deadlineOnlyCtx) Done() <-chan struct{}       { return nil }
func (d deadlineOnlyCtx) Err() error                  { return nil }
func (d deadlineOnlyCtx) Value(key any) any           { return d.parent.Value(key) }

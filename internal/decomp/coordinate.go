package decomp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"dspp/internal/core"
	"dspp/internal/parallel"
	"dspp/internal/qp"
	"dspp/internal/telemetry"
)

// Options configures the decomposition layer.
type Options struct {
	// MaxShardSize caps locations per shard (0 = connected components
	// only, however large).
	MaxShardSize int
	// BypassBelow skips decomposition entirely for instances with fewer
	// locations (default 32): at that size the monolithic session is
	// faster than any coordination round-trip.
	BypassBelow int
	// MaxRounds bounds the dual-price coordination loop per MPC step
	// (default 20).
	MaxRounds int
	// Tol is the ε-stability cutoff: the loop stops once no shard's
	// horizon cost moved by more than Tol relative between rounds
	// (default 5e-3).
	Tol float64
	// Alpha is the quota transfer step in (0, 1] (default 0.5).
	Alpha float64
	// MinQuotaFrac floors each shard's share of a shared DC's capacity
	// at MinQuotaFrac·C/|shards| (default 1e-3), keeping every
	// sub-instance's capacity vector strictly positive.
	MinQuotaFrac float64
	// UsageMargin is the headroom an unconstrained shard keeps above its
	// planned peak when donating quota (default 0.05).
	UsageMargin float64
	// Workers bounds the per-round parallel shard solves (≤ 0 means
	// GOMAXPROCS).
	Workers int
	// QP configures the per-shard interior-point solver (zero value =
	// solver defaults).
	QP qp.Options
	// Telemetry, when non-nil, receives coordinate spans, the
	// dspp_decomp_shards gauge, dspp_coordination_rounds_total, and the
	// per-shard QP solver counters.
	Telemetry *telemetry.Hub
	// NoFallback disables the monolithic-fallback rung: a coordination
	// loop that exhausts MaxRounds returns its (feasible) last iterate
	// with Converged=false, and shard solve failures surface as errors.
	// Benchmarks use it to time pure coordination.
	NoFallback bool
}

func (o Options) withDefaults() Options {
	if o.BypassBelow <= 0 {
		o.BypassBelow = 32
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 20
	}
	if o.Tol <= 0 {
		o.Tol = 5e-3
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.5
	}
	if o.MinQuotaFrac <= 0 {
		o.MinQuotaFrac = 1e-3
	}
	if o.UsageMargin <= 0 {
		o.UsageMargin = 0.05
	}
	if o.Telemetry != nil {
		o.QP.Hooks = o.Telemetry.QPHooks()
	}
	return o
}

// regionShard is one region's solver state: the sub-instance over its
// (locations × reachable DCs) block, a persistent HorizonSession, and
// pre-allocated scatter buffers refilled every solve.
type regionShard struct {
	locs, dcs []int
	sub       *core.Instance
	ses       *core.HorizonSession
	// caps is the live capacity vector handed to the sub-instance:
	// exclusive DCs carry the parent's full capacity, shared DCs the
	// current quota.
	caps []float64
	// Scatter buffers (refilled per solve/period).
	x0             core.State
	demand, prices [][]float64
	// Warm chaining: shift 1 on a period's first round (receding
	// horizon), 0 on later rounds (same window, new quotas).
	warm      *core.HorizonWarm
	warmShift int
	plan      *core.Plan
	// dualBuf receives the horizon-summed capacity duals per local DC.
	dualBuf        []float64
	cost, prevCost float64
	capsDirty      bool
	// hit marks that this shard's latest solve was stopped by the period
	// deadline and contributed a projected anytime iterate rather than a
	// converged plan. Written only by the shard's own round worker.
	hit bool
}

// needTerm weights one location's demand in a shard's initial-quota
// estimate: w = a_lv/|F(v)| converts the location's forecast demand into
// the servers this DC would host if the location split evenly across its
// feasible DCs.
type needTerm struct {
	v int
	w float64
}

// member is one shard's stake in a shared DC.
type member struct {
	shard, localDC int
	needW          []needTerm
	// minW lists the shard locations whose globally most efficient
	// (lowest-a) DC is this one. Their min-server load is the shard's
	// feasibility floor on the quota: as long as every member keeps at
	// least that much, the min-server assignment — which the parent
	// instance admits whenever it is feasible at all — restricts to a
	// feasible point of every shard sub-instance, so no quota split can
	// ever hand a shard an infeasible QP.
	minW []needTerm
}

// sharedDC is a capacitated DC reachable from several shards: its
// capacity is divided into per-shard quotas that the coordination loop
// re-prices each round. Quotas persist across MPC periods (warm prices).
type sharedDC struct {
	global  int
	cap     float64
	members []member
	quota   []float64
	need    []float64 // scratch
	// minQ[i] is member i's feasibility floor for the current forecasts,
	// recomputed each solve from the members' minW terms.
	minQ []float64
}

// Solver runs the sharded solve for one (instance, horizon) pair. Not
// safe for concurrent use; the parallelism is internal (per-round shard
// fan-out).
type Solver struct {
	inst *core.Instance
	w    int
	opt  Options
	part *Partition

	shards []*regionShard
	shared []*sharedDC

	quotasInit  bool
	coordRounds *telemetry.Counter
}

// Solution is one coordinated horizon solve.
type Solution struct {
	// Applied is the global first-step control; State the allocation
	// after applying it. Both are freshly allocated per solve.
	Applied core.State
	State   core.State
	// Objective is the exact global horizon objective: pairs partition
	// across shards, so it is the plain sum of shard objectives.
	Objective float64
	// Rounds is the number of coordination rounds used; Converged
	// reports whether the loop met the ε-stability cutoff in budget.
	Rounds    int
	Converged bool
	// DeadlineHit reports that the context deadline stopped the loop
	// between rounds: the solution is the last complete (feasible)
	// iterate, just not ε-stable. Mutually exclusive with Converged.
	DeadlineHit bool
	// Partial reports that the deadline fired inside the final round, so
	// at least one shard contributed a projected anytime iterate instead
	// of a converged plan. The gathered solution is capacity-feasible
	// (every anytime plan is projected onto its quota) but may under-serve
	// demand — the same contract as the monolithic solver's anytime rung.
	// When DeadlineHit is set without Partial, the iterate additionally
	// satisfies all demand constraints.
	Partial bool
	// QPIterations/ColdRestarts aggregate the shard solves.
	QPIterations int
	ColdRestarts int
}

// NewSolver builds the per-shard sub-instances and sessions for the given
// partition. The partition must come from NewPartition on the same
// instance.
func NewSolver(inst *core.Instance, horizon int, part *Partition, opt Options) (*Solver, error) {
	if inst == nil || part == nil {
		return nil, fmt.Errorf("nil instance or partition: %w", ErrBadConfig)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadConfig)
	}
	opt = opt.withDefaults()
	s := &Solver{inst: inst, w: horizon, opt: opt, part: part}
	if reg := opt.Telemetry.Registry(); reg != nil {
		s.coordRounds = reg.Counter(telemetry.MetricCoordinationRounds)
		reg.Gauge(telemetry.MetricDecompShards).Set(float64(len(part.Shards)))
	}

	// Per-location feasible-DC counts (initial-quota weights) and each
	// location's most efficient DC (quota feasibility floors).
	locFeas := make([]int, inst.NumLocations())
	locCheapest := make([]int, inst.NumLocations())
	var buf []int
	for v := range locFeas {
		buf = inst.FeasibleDCs(v, buf[:0])
		locFeas[v] = len(buf)
		best, bestL := math.Inf(1), -1
		for _, l := range buf {
			a, err := inst.SLACoefficient(l, v)
			if err != nil {
				return nil, err
			}
			if a < best {
				best, bestL = a, l
			}
		}
		locCheapest[v] = bestL
	}

	localIdx := make([]map[int]int, len(part.Shards))
	for i, sh := range part.Shards {
		sub, ses, err := buildShard(inst, sh, horizon, opt.QP)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r := &regionShard{
			locs: sh.Locations, dcs: sh.DCs, sub: sub, ses: ses,
			caps:    sub.Capacities(),
			x0:      sub.NewState(),
			demand:  make([][]float64, horizon),
			prices:  make([][]float64, horizon),
			dualBuf: make([]float64, len(sh.DCs)),
		}
		for t := 0; t < horizon; t++ {
			r.demand[t] = make([]float64, len(sh.Locations))
			r.prices[t] = make([]float64, len(sh.DCs))
		}
		s.shards = append(s.shards, r)
		localIdx[i] = make(map[int]int, len(sh.DCs))
		for li, gl := range sh.DCs {
			localIdx[i][gl] = li
		}
	}

	// Shared-DC table: capacitated DCs spanning several shards. An
	// uncapacitated shared DC needs no coordination — every shard keeps
	// it at +Inf.
	for _, gl := range part.SharedDCs {
		c, err := inst.Capacity(gl)
		if err != nil {
			return nil, err
		}
		if math.IsInf(c, 1) {
			continue
		}
		sd := &sharedDC{global: gl, cap: c}
		for i, sh := range part.Shards {
			li, ok := localIdx[i][gl]
			if !ok {
				continue
			}
			m := member{shard: i, localDC: li}
			for _, gv := range sh.Locations {
				if !inst.Feasible(gl, gv) {
					continue
				}
				a, err := inst.SLACoefficient(gl, gv)
				if err != nil {
					return nil, err
				}
				m.needW = append(m.needW, needTerm{v: gv, w: a / float64(locFeas[gv])})
				if locCheapest[gv] == gl {
					m.minW = append(m.minW, needTerm{v: gv, w: a})
				}
			}
			sd.members = append(sd.members, m)
		}
		sd.quota = make([]float64, len(sd.members))
		sd.need = make([]float64, len(sd.members))
		sd.minQ = make([]float64, len(sd.members))
		s.shared = append(s.shared, sd)
	}
	return s, nil
}

// buildShard extracts the sub-instance over (sh.DCs × sh.Locations) and
// opens its horizon session. Every feasible pair of a shard location is
// inside the block by construction, so the sub-instance always validates.
func buildShard(inst *core.Instance, sh Shard, horizon int, opts qp.Options) (*core.Instance, *core.HorizonSession, error) {
	sla := make([][]float64, len(sh.DCs))
	rec := make([]float64, len(sh.DCs))
	caps := make([]float64, len(sh.DCs))
	for i, gl := range sh.DCs {
		row := make([]float64, len(sh.Locations))
		for j, gv := range sh.Locations {
			a, err := inst.SLACoefficient(gl, gv)
			if err != nil {
				return nil, nil, err
			}
			row[j] = a
		}
		sla[i] = row
		var err error
		if rec[i], err = inst.ReconfigWeight(gl); err != nil {
			return nil, nil, err
		}
		if caps[i], err = inst.Capacity(gl); err != nil {
			return nil, nil, err
		}
	}
	sub, err := core.NewInstance(core.Config{SLA: sla, ReconfigWeights: rec, Capacities: caps})
	if err != nil {
		return nil, nil, err
	}
	ses, err := sub.NewHorizonSession(horizon, opts)
	if err != nil {
		return nil, nil, err
	}
	return sub, ses, nil
}

// Shards returns the shard count.
func (s *Solver) Shards() int { return len(s.shards) }

// Partition returns the partition the solver was built on.
func (s *Solver) Partition() *Partition { return s.part }

// Reset drops the per-shard warm starts (after an external state change).
// Quota prices persist: they track capacity congestion, not trajectory.
func (s *Solver) Reset() {
	for _, r := range s.shards {
		r.warm = nil
		r.plan = nil
		r.cost, r.prevCost = 0, 0
	}
}

// SolveCtx runs one coordinated horizon solve from x0: scatter the
// forecasts, solve every shard in parallel under the current quotas, and
// re-price shared capacity until shard costs are ε-stable or the round
// budget runs out. The returned solution is feasible for the full
// instance at every iterate — quotas partition capacity, so aggregate
// usage can never exceed it; budget exhaustion costs optimality, not
// feasibility.
func (s *Solver) SolveCtx(ctx context.Context, x0 core.State, demand, prices [][]float64) (*Solution, error) {
	if err := s.inst.CheckState(x0); err != nil {
		return nil, err
	}
	if len(demand) < s.w || len(prices) < s.w {
		return nil, fmt.Errorf("forecasts cover %d/%d periods, horizon %d: %w",
			len(demand), len(prices), s.w, core.ErrBadInput)
	}

	// Scatter the period's inputs into every shard's buffers and reset
	// the warm shift for a new receding-horizon step.
	for _, r := range s.shards {
		for j, gv := range r.locs {
			for t := 0; t < s.w; t++ {
				r.demand[t][j] = demand[t][gv]
			}
		}
		for i, gl := range r.dcs {
			for t := 0; t < s.w; t++ {
				r.prices[t][i] = prices[t][gl]
			}
		}
		for i, gl := range r.dcs {
			for j, gv := range r.locs {
				r.x0[i][j] = x0[gl][gv]
			}
		}
		r.warmShift = 1
	}
	s.refreshCapacities()
	s.computeQuotaFloors(demand)
	if !s.quotasInit {
		s.initQuotas(demand[0])
		s.quotasInit = true
	} else {
		// Warm quotas from the previous period may sit below the new
		// forecasts' floors; re-floor before the first round.
		for _, sd := range s.shared {
			s.floorAndRenormalize(sd)
		}
	}
	s.applyQuotas()
	if err := s.pushCapacities(); err != nil {
		return nil, err
	}

	tr := s.opt.Telemetry.Tracer()
	sp := tr.Start(telemetry.SpanCoordinate, telemetry.SpanIDFromContext(ctx),
		telemetry.Num("shards", float64(len(s.shards))))
	ctx = telemetry.ContextWithSpan(ctx, sp)
	defer sp.End()

	sol := &Solution{}
	workers := parallel.Workers(s.opt.Workers, len(s.shards))
	deadline, hasDeadline := ctx.Deadline()
	// Under a period deadline the shard solves run in anytime mode against
	// a deadline-only view of the context: the solver's per-iteration clock
	// check stops each shard within one iteration of the deadline and hands
	// back its best iterate, while the suppressed cancellation keeps the
	// work scheduler from skipping shards outright once the deadline has
	// passed — every shard must contribute an iterate for the gathered
	// round to stay a full partition. Cancellation response degrades by at
	// most the tail of the current (clock-bounded) round.
	solveCtx := ctx
	for _, r := range s.shards {
		r.ses.SetAnytime(hasDeadline)
	}
	if hasDeadline {
		solveCtx = deadlineOnlyCtx{parent: ctx}
	}
	for round := 0; round < s.opt.MaxRounds; round++ {
		roundStart := time.Now()
		err := parallel.ForEachCtx(solveCtx, len(s.shards), workers, func(i int) error {
			r := s.shards[i]
			r.hit = false
			plan, err := r.ses.SolveCtx(solveCtx, core.HorizonInput{
				X0: r.x0, Demand: r.demand, Prices: r.prices,
				Warm: r.warm, WarmShift: r.warmShift,
			})
			if err != nil {
				if plan == nil || !errors.Is(err, qp.ErrDeadline) {
					return fmt.Errorf("shard %d: %w", i, err)
				}
				// Deadline-stopped shard: its best iterate, projected
				// onto the shard's capacity quota, is this round's
				// contribution. Quotas partition the shared capacity, so
				// the gathered global state stays feasible.
				r.sub.ProjectPlanCapacity(plan, r.x0, r.prices)
				r.hit = true
			}
			r.plan = plan
			r.warm = plan.Warm
			r.warmShift = 0
			r.prevCost, r.cost = r.cost, plan.Objective
			plan.TotalCapacityDualsInto(r.dualBuf)
			return nil
		})
		if err != nil {
			sp.SetAttr(telemetry.Str("outcome", "error"))
			return nil, fmt.Errorf("round %d: %w: %w", round, ErrCoordination, err)
		}
		sol.Rounds++
		anyHit := false
		for _, r := range s.shards {
			sol.QPIterations += r.plan.QPIterations
			sol.ColdRestarts += r.plan.ColdRestarts
			anyHit = anyHit || r.hit
		}
		if anyHit {
			// The deadline fired inside this round: the gathered iterate
			// is capacity-feasible (every shard contributed, anytime plans
			// are projected) but not ε-stable. Stop here — the convergence
			// test would be comparing partial-solve costs.
			sol.DeadlineHit = true
			sol.Partial = true
			sp.SetAttr(telemetry.Str("outcome", "deadline"))
			break
		}
		if s.converged(round) {
			sol.Converged = true
			break
		}
		// Period-deadline respect: every completed round is a feasible
		// iterate (quotas partition capacity), so when the budget is
		// about to run out — or already has — return the current iterate
		// instead of starting a round that cannot finish. The 1.5×
		// last-round margin stops before the deadline fires mid-solve,
		// where only an error could come back.
		if hasDeadline && (ctx.Err() != nil || time.Until(deadline) < time.Since(roundStart)*3/2) {
			sol.DeadlineHit = true
			sp.SetAttr(telemetry.Str("outcome", "deadline"))
			break
		}
		if round < s.opt.MaxRounds-1 {
			s.updateQuotas(round)
			s.applyQuotas()
			if err := s.pushCapacities(); err != nil {
				return nil, err
			}
		}
	}
	if s.coordRounds != nil {
		s.coordRounds.Add(float64(sol.Rounds))
	}
	sp.SetAttr(telemetry.Num("rounds", float64(sol.Rounds)),
		telemetry.Str("converged", fmt.Sprintf("%t", sol.Converged)))

	// Gather: pairs partition across shards, so the global first-step
	// control/state and the objective assemble by plain scatter and sum.
	sol.Applied = s.inst.NewState()
	sol.State = s.inst.NewState()
	for _, r := range s.shards {
		u0, x1 := r.plan.U[0], r.plan.X[0]
		for i, gl := range r.dcs {
			for j, gv := range r.locs {
				sol.Applied[gl][gv] = u0[i][j]
				sol.State[gl][gv] = x1[i][j]
			}
		}
		sol.Objective += r.plan.Objective
	}
	return sol, nil
}

// converged implements the stability test: no coupling, no binding
// shared capacity anywhere, or every shard's cost ε-stable vs the
// previous round.
func (s *Solver) converged(round int) bool {
	if len(s.shared) == 0 {
		return true
	}
	var maxDual float64
	for _, sd := range s.shared {
		for _, m := range sd.members {
			if d := s.shards[m.shard].dualBuf[m.localDC]; d > maxDual {
				maxDual = d
			}
		}
	}
	if maxDual <= 1e-9 {
		// Quotas bind nowhere: every shard is at its unconstrained
		// optimum, so the assembled solution is globally optimal.
		return true
	}
	if round == 0 {
		return false
	}
	for _, r := range s.shards {
		if math.Abs(r.cost-r.prevCost) > s.opt.Tol*math.Max(1, math.Abs(r.cost)) {
			return false
		}
	}
	return true
}

// refreshCapacities re-reads the parent instance's capacities (fault
// schedules move them between periods): exclusive DCs take the live value
// directly, shared DCs rescale their quota split to the new total.
func (s *Solver) refreshCapacities() {
	for _, r := range s.shards {
		for i, gl := range r.dcs {
			if s.part.DCShards[gl] > 1 {
				continue // quota-managed (or uncapacitated-shared: set below)
			}
			if c, err := s.inst.Capacity(gl); err == nil && c != r.caps[i] {
				r.caps[i] = c
				r.capsDirty = true
			}
		}
	}
	for _, sd := range s.shared {
		c, err := s.inst.Capacity(sd.global)
		if err != nil || c == sd.cap {
			continue
		}
		if s.quotasInit && sd.cap > 0 {
			scale := c / sd.cap
			for i := range sd.quota {
				sd.quota[i] *= scale
			}
		}
		sd.cap = c
	}
	// Uncapacitated shared DCs never made it into s.shared; keep their
	// +Inf entries in sync (they never change, SetCapacities forbids it).
}

// computeQuotaFloors refreshes every member's feasibility floor for the
// current forecasts: the peak-over-horizon min-server load of the shard
// locations anchored (lowest-a) on the shared DC, plus a hair of headroom
// so the shard QP keeps a strict interior. Whenever the parent instance is
// feasible under the min-server assignment, the floors sum below capacity
// — so flooring never conflicts with the quota split adding up to C.
func (s *Solver) computeQuotaFloors(demand [][]float64) {
	for _, sd := range s.shared {
		for i, m := range sd.members {
			var peak float64
			for t := 0; t < s.w; t++ {
				var load float64
				for _, term := range m.minW {
					load += term.w * demand[t][term.v]
				}
				if load > peak {
					peak = load
				}
			}
			sd.minQ[i] = peak * (1 + 1e-9)
		}
	}
}

// initQuotas seeds the quota split of every shared DC proportionally to
// each shard's estimated server need at the first forecast step.
func (s *Solver) initQuotas(demand0 []float64) {
	for _, sd := range s.shared {
		var total float64
		for i, m := range sd.members {
			var need float64
			for _, t := range m.needW {
				need += t.w * demand0[t.v]
			}
			sd.need[i] = need
			total += need
		}
		for i := range sd.quota {
			if total > 0 {
				sd.quota[i] = sd.cap * sd.need[i] / total
			} else {
				sd.quota[i] = sd.cap / float64(len(sd.members))
			}
		}
		s.floorAndRenormalize(sd)
	}
}

// Diminishing-step schedule for the quota transfers: after quotaDampAfter
// update rounds the step shrinks geometrically by quotaDampFactor per
// round. On densely shared capacity (many shards per DC) donor/receiver
// roles can oscillate under a fixed step; the shrinking step forces the
// shard costs to settle inside the ε-stability cutoff, the same reason
// subgradient dual methods use diminishing step sizes.
const (
	quotaDampAfter  = 8
	quotaDampFactor = 0.8
)

// updateQuotas is the dual-price re-division, run between rounds: shards
// whose quota is slack (zero capacity dual) donate α of their surplus
// above planned peak usage, and the pool is granted to constrained shards
// in proportion to their duals — the same price-proportional redivision
// as the paper's Algorithm-2 quota machinery, made zero-sum so aggregate
// capacity is conserved at every iterate. When every shard is constrained
// the split blends toward fully dual-proportional instead.
func (s *Solver) updateQuotas(round int) {
	alpha := s.opt.Alpha
	if round >= quotaDampAfter {
		alpha *= math.Pow(quotaDampFactor, float64(round-quotaDampAfter+1))
	}
	for _, sd := range s.shared {
		var maxDual, sumDual float64
		for i, m := range sd.members {
			d := s.shards[m.shard].dualBuf[m.localDC]
			sd.need[i] = d // reuse scratch as the dual snapshot
			if d > maxDual {
				maxDual = d
			}
			sumDual += d
		}
		if maxDual <= 1e-12 {
			continue
		}
		eps := 1e-6 * maxDual
		var pool, sumConstrained float64
		for i := range sd.members {
			if sd.need[i] > eps {
				sumConstrained += sd.need[i]
			}
		}
		for i, m := range sd.members {
			if sd.need[i] > eps {
				continue
			}
			peak := s.shardPeakUsage(m)
			slack := sd.quota[i] - peak*(1+s.opt.UsageMargin)
			if slack > 0 {
				give := alpha * slack
				sd.quota[i] -= give
				pool += give
			}
		}
		if pool > 0 {
			for i := range sd.members {
				if sd.need[i] > eps {
					sd.quota[i] += pool * sd.need[i] / sumConstrained
				}
			}
		} else {
			for i := range sd.members {
				sd.quota[i] = (1-alpha)*sd.quota[i] + alpha*sd.cap*sd.need[i]/sumDual
			}
		}
		s.floorAndRenormalize(sd)
	}
}

// shardPeakUsage returns the largest planned per-step total allocation on
// the member's DC across the horizon.
func (s *Solver) shardPeakUsage(m member) float64 {
	plan := s.shards[m.shard].plan
	var peak float64
	for _, x := range plan.X {
		var tot float64
		for _, xv := range x[m.localDC] {
			tot += xv
		}
		if tot > peak {
			peak = tot
		}
	}
	return peak
}

// floorAndRenormalize clamps every quota to its floor — the larger of the
// member's feasibility floor and the strictly-positive MinQuotaFrac share
// — then renormalizes only the surplus above the floors, so the split
// sums exactly to capacity without ever dipping below what any shard
// needs to stay feasible. If the floors alone exceed capacity (the parent
// instance itself is infeasible for these forecasts), the floors are
// scaled down proportionally and the shard QPs surface the infeasibility.
func (s *Solver) floorAndRenormalize(sd *sharedDC) {
	frac := s.opt.MinQuotaFrac * sd.cap / float64(len(sd.quota))
	var floorSum, surplus float64
	for i := range sd.quota {
		f := sd.minQ[i]
		if f < frac {
			f = frac
		}
		if sd.quota[i] < f {
			sd.quota[i] = f
		}
		floorSum += f
		surplus += sd.quota[i] - f
	}
	if floorSum >= sd.cap {
		scale := sd.cap / floorSum
		for i := range sd.quota {
			f := sd.minQ[i]
			if f < frac {
				f = frac
			}
			sd.quota[i] = f * scale
		}
		return
	}
	if surplus > 0 {
		scale := (sd.cap - floorSum) / surplus
		for i := range sd.quota {
			f := sd.minQ[i]
			if f < frac {
				f = frac
			}
			sd.quota[i] = f + (sd.quota[i]-f)*scale
		}
		return
	}
	// No surplus anywhere: hand the spare capacity out evenly.
	spare := (sd.cap - floorSum) / float64(len(sd.quota))
	for i := range sd.quota {
		f := sd.minQ[i]
		if f < frac {
			f = frac
		}
		sd.quota[i] = f + spare
	}
}

// applyQuotas writes the current quota split into the owning shards'
// capacity vectors.
func (s *Solver) applyQuotas() {
	for _, sd := range s.shared {
		for i, m := range sd.members {
			r := s.shards[m.shard]
			if r.caps[m.localDC] != sd.quota[i] {
				r.caps[m.localDC] = sd.quota[i]
				r.capsDirty = true
			}
		}
	}
}

// pushCapacities flushes dirty capacity vectors into the sub-instances.
func (s *Solver) pushCapacities() error {
	for i, r := range s.shards {
		if !r.capsDirty {
			continue
		}
		if err := r.sub.SetCapacities(r.caps); err != nil {
			return fmt.Errorf("shard %d capacities: %w", i, err)
		}
		r.capsDirty = false
	}
	return nil
}

// deadlineOnlyCtx exposes its parent's deadline while never reporting
// cancellation. Shard solves in a deadline-bounded round run against this
// view: the QP solver's per-iteration clock check (which reads Deadline())
// still stops each solve on time with an anytime iterate, but the work
// scheduler's Err() pre-checks can't skip shards whose turn comes after
// the deadline — a gathered round needs every shard's contribution to
// remain a full partition of the instance.
type deadlineOnlyCtx struct{ parent context.Context }

func (d deadlineOnlyCtx) Deadline() (time.Time, bool) { return d.parent.Deadline() }
func (d deadlineOnlyCtx) Done() <-chan struct{}       { return nil }
func (d deadlineOnlyCtx) Err() error                  { return nil }
func (d deadlineOnlyCtx) Value(key any) any           { return d.parent.Value(key) }

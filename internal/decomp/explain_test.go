package decomp

import (
	"math"
	"testing"

	"dspp/internal/core"
)

// TestControllerLastExplainDecomp covers the dual-retention fix: the
// coordinated solver must keep the final round's per-shard capacity
// duals on the Solution (instead of dropping them at convergence), and
// LastExplain must surface them together with the quota split actually
// applied.
func TestControllerLastExplainDecomp(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 160, DCSites: 16, Seed: 81, Utilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(scn.Inst, 2, Options{MaxShardSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if e := ctrl.LastExplain(); e.CapacityDuals != nil || e.Quotas != nil {
		t.Fatal("explain non-zero before first step")
	}
	if _, _, err := ctrl.Step(scn.Demand, scn.Prices); err != nil {
		t.Fatal(err)
	}
	sol := ctrl.LastSolution()
	if sol == nil {
		t.Fatal("no solution after coordinated step")
	}
	nDC := scn.Inst.NumDataCenters()
	if len(sol.CapacityDuals) != nDC || len(sol.Quotas) != nDC || len(sol.ShardOfDC) != nDC {
		t.Fatalf("solution provenance lens %d/%d/%d, want %d",
			len(sol.CapacityDuals), len(sol.Quotas), len(sol.ShardOfDC), nDC)
	}
	e := ctrl.LastExplain()
	if len(e.CapacityDuals) != nDC || len(e.Quotas) != nDC || len(e.ShardOfDC) != nDC {
		t.Fatalf("explain lens %d/%d/%d, want %d",
			len(e.CapacityDuals), len(e.Quotas), len(e.ShardOfDC), nDC)
	}
	exclusive := 0
	for l := 0; l < nDC; l++ {
		if e.CapacityDuals[l] != sol.CapacityDuals[l] || e.Quotas[l] != sol.Quotas[l] {
			t.Fatalf("explain diverges from solution at dc %d", l)
		}
		if d := e.CapacityDuals[l]; d < 0 || math.IsNaN(d) {
			t.Fatalf("dual[%d] = %g", l, d)
		}
		cap, err := scn.Inst.Capacity(l)
		if err != nil {
			t.Fatal(err)
		}
		if q := e.Quotas[l]; q <= 0 || q > cap*(1+1e-9) {
			t.Fatalf("quota[%d] = %g, capacity %g", l, q, cap)
		}
		if s := e.ShardOfDC[l]; s < -1 {
			t.Fatalf("shard[%d] = %d", l, s)
		} else if s >= 0 {
			exclusive++
			// An exclusively owned DC's enforced quota is its capacity.
			if q := e.Quotas[l]; math.Abs(q-cap) > 1e-9*math.Max(1, cap) {
				t.Fatalf("exclusive dc %d quota %g != capacity %g", l, q, cap)
			}
		}
	}
	if exclusive == 0 {
		t.Fatal("no DC exclusively owned by a shard (partition degenerate?)")
	}
	// The returned slices are copies: mutating them must not corrupt the
	// retained solution.
	e.CapacityDuals[0] = -42
	if ctrl.LastExplain().CapacityDuals[0] == -42 {
		t.Fatal("LastExplain leaks internal storage")
	}
	// A second step (carry/held paths included) must still explain.
	if _, _, err := ctrl.Step(scn.Demand, scn.Prices); err != nil {
		t.Fatal(err)
	}
	if e := ctrl.LastExplain(); len(e.CapacityDuals) != nDC {
		t.Fatalf("explain lost after second step: %d duals", len(e.CapacityDuals))
	}
}

// TestControllerLastExplainBypass checks the bypass path (instance too
// small to shard) delegates to the monolithic controller's explain:
// duals only, no quota view.
func TestControllerLastExplainBypass(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 12, DCSites: 2, Seed: 7, Utilization: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(scn.Inst, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrl.Step(scn.Demand, scn.Prices); err != nil {
		t.Fatal(err)
	}
	e := ctrl.LastExplain()
	if len(e.CapacityDuals) != scn.Inst.NumDataCenters() {
		t.Fatalf("bypass duals len %d", len(e.CapacityDuals))
	}
	if e.Quotas != nil || e.ShardOfDC != nil {
		t.Fatal("bypass path must not report a quota split")
	}
	var _ core.Explainer = ctrl // compile-time: decomp controller explains
}

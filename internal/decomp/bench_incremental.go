package decomp

import (
	"context"
	"fmt"
	"math"
	"time"

	"dspp/internal/core"
)

// IncrementalCase is one point of the incremental-coordination curve:
// the same scenario/shard geometry as a ScalingCase, plus a quiet MPC
// tail that measures how much of the fleet the dirty-shard scheduler
// still re-solves once the trajectory has settled.
type IncrementalCase struct {
	ScalingCase
	// SteadyPeriods is the length of the constant-forecast MPC tail run
	// after the cold solve. The steady metrics are computed over the
	// second half of the tail, past the settling transient. Zero skips
	// the tail (frontier sizes where only the cold solve is of interest).
	SteadyPeriods int
}

// IncrementalRecord is one measured point, shaped for BENCH_5.json.
// The cold-solve fields mirror ScalingRecord so the two curves compare
// column for column; the incremental fields record what the dirty-shard
// scheduler and the rank-k fast path did during that solve, and the
// steady_* fields what a settled MPC loop costs per period.
type IncrementalRecord struct {
	Name         string `json:"name"`
	Locations    int    `json:"locations"`
	DCs          int    `json:"dcs"`
	Pairs        int    `json:"pairs"`
	Shards       int    `json:"shards"`
	SharedDCs    int    `json:"shared_dcs"`
	MaxShardSize int    `json:"max_shard_size"`
	// Bypassed records a case the cost model routed to the monolithic
	// path. Its decomp and mono fields then describe the same single
	// solve — the bypass guarantees parity by construction (identical
	// code path), so speedup is exactly 1 and cost_gap exactly 0.
	Bypassed  bool `json:"bypassed"`
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// Cold-solve incremental accounting (Solution counters): shard QP
	// solves across all rounds, shard-rounds skipped clean, and solves
	// served by the rank-k capacity fast path.
	ShardSolves   int     `json:"shard_solves"`
	SkippedShards int     `json:"skipped_shards"`
	FastResolves  int     `json:"fast_resolves"`
	DirtyFraction float64 `json:"dirty_fraction"`

	DecompSolveSec  float64 `json:"decomp_solve_sec"`
	MonoSolveSec    float64 `json:"mono_solve_sec"`
	DecompObjective float64 `json:"decomp_objective"`
	MonoObjective   float64 `json:"mono_objective"`
	// CostGap = (decomp − mono)/|mono|; −1 when no monolithic reference
	// exists at this size. Speedup = mono/decomp seconds; 0 without a
	// reference.
	CostGap float64 `json:"cost_gap"`
	Speedup float64 `json:"speedup"`

	// Bench4DecompSec repeats the BENCH_4 (pre-incremental) coordinated
	// solve time for this case, when a baseline record was supplied;
	// SpeedupVsBench4 is against it. Both 0 without a baseline.
	Bench4DecompSec float64 `json:"bench4_decomp_solve_sec"`
	SpeedupVsBench4 float64 `json:"speedup_vs_bench4"`

	// Steady-state tail, measured over the second half of SteadyPeriods
	// constant-forecast MPC periods: the fraction of shard-slots
	// re-solved per period (shard solves / (periods × shards); a fully
	// carried period contributes zero), mean coordination rounds, fully
	// carried periods in the window, and mean wall-clock per period.
	SteadyPeriods     int     `json:"steady_periods"`
	SteadyDirtyFrac   float64 `json:"steady_dirty_fraction"`
	SteadyRounds      float64 `json:"steady_rounds_per_period"`
	SteadyHeldPeriods int     `json:"steady_held_periods"`
	SteadySecPeriod   float64 `json:"steady_solve_sec_per_period"`
	// SteadySkipped totals the shard-rounds skipped clean across the
	// whole tail (transient included — that is where most of the
	// skipping happens, before full carry takes over).
	SteadySkipped int `json:"steady_skipped_shards"`
}

// incrementalOptions is the solver configuration the incremental curve
// measures: dirty-shard scheduling on (the default), the rank-k capacity
// fast path, and cross-period carry at the quota tolerance.
func incrementalOptions(maxShardSize int) Options {
	return Options{
		MaxShardSize:   maxShardSize,
		NoFallback:     true,
		RankK:          true,
		PeriodCarryTol: 1e-3,
	}
}

// RunIncremental measures the incremental-coordination curve: for every
// case, one cold coordinated solve with the incremental machinery on
// (or the monolithic solve, where the bypass cost model sends it),
// followed by a quiet MPC tail that exercises dirty-shard skipping and
// cross-period carry. Monolithic references come from the supplied
// BENCH_4 baseline records when present (the scenario generator and the
// monolithic solve are deterministic, so the baseline objective is the
// exact reference), and are measured fresh otherwise; baseline decomp
// times feed the speedup_vs_bench4 column.
func RunIncremental(ctx context.Context, cases []IncrementalCase, baseline []ScalingRecord) ([]IncrementalRecord, error) {
	base := make(map[string]ScalingRecord, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b
	}
	refs := make(map[scenarioKey]monoRef)
	var out []IncrementalRecord
	for _, cs := range cases {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		w := cs.Horizon
		if w < 1 {
			w = 2
		}
		scn, err := NewScenario(ScenarioConfig{
			Locations: cs.Locations, DCSites: cs.DCSites,
			Seed: cs.Seed, Horizon: w, Utilization: cs.Utilization,
		})
		if err != nil {
			return out, fmt.Errorf("case %s: %w", cs.Name, err)
		}
		inst := scn.Inst
		x0 := inst.NewState()

		part, err := NewPartition(inst, cs.MaxShardSize)
		if err != nil {
			return out, fmt.Errorf("case %s: %w", cs.Name, err)
		}
		opt := incrementalOptions(cs.MaxShardSize)
		rec := IncrementalRecord{
			Name:      cs.Name,
			Locations: cs.Locations, DCs: cs.DCSites,
			Pairs:  inst.NumPairs(),
			Shards: len(part.Shards), SharedDCs: len(part.SharedDCs),
			MaxShardSize: cs.MaxShardSize,
			CostGap:      -1,
		}
		if b, ok := base[cs.Name]; ok && b.DecompSolveSec > 0 {
			rec.Bench4DecompSec = b.DecompSolveSec
		}

		key := scenarioKey{loc: cs.Locations, dc: cs.DCSites, w: w, seed: cs.Seed, util: cs.Utilization}
		ref, haveRef := refs[key]
		if !haveRef {
			if b, ok := base[cs.Name]; ok && b.MonoObjective != 0 && b.MonoSolveSec > 0 {
				ref = monoRef{seconds: b.MonoSolveSec, objective: b.MonoObjective}
				refs[key] = ref
				haveRef = true
			}
		}

		if DecideBypass(inst, part, opt).Bypass {
			// The controller would solve this case monolithically; measure
			// that solve once and record it on both sides.
			ses, err := inst.NewHorizonSession(w, opt.withDefaults().QP)
			if err != nil {
				return out, fmt.Errorf("case %s bypass session: %w", cs.Name, err)
			}
			start := time.Now()
			plan, err := ses.SolveCtx(ctx, core.HorizonInput{
				X0: x0, Demand: scn.Demand, Prices: scn.Prices,
			})
			if err != nil {
				return out, fmt.Errorf("case %s bypass solve: %w", cs.Name, err)
			}
			sec := time.Since(start).Seconds()
			rec.Bypassed, rec.Converged = true, true
			rec.DecompSolveSec, rec.DecompObjective = sec, plan.Objective
			rec.MonoSolveSec, rec.MonoObjective = sec, plan.Objective
			rec.CostGap, rec.Speedup = 0, 1
			if rec.Bench4DecompSec > 0 && sec > 0 {
				rec.SpeedupVsBench4 = rec.Bench4DecompSec / sec
			}
			out = append(out, rec)
			continue
		}

		solver, err := NewSolver(inst, w, part, opt)
		if err != nil {
			return out, fmt.Errorf("case %s: %w", cs.Name, err)
		}
		start := time.Now()
		sol, err := solver.SolveCtx(ctx, x0, scn.Demand, scn.Prices)
		if err != nil {
			return out, fmt.Errorf("case %s decomp solve: %w", cs.Name, err)
		}
		decompSec := time.Since(start).Seconds()
		rec.Rounds, rec.Converged = sol.Rounds, sol.Converged
		rec.ShardSolves, rec.SkippedShards = sol.ShardSolves, sol.SkippedShards
		rec.FastResolves, rec.DirtyFraction = sol.FastResolves, sol.DirtyFraction()
		rec.DecompSolveSec, rec.DecompObjective = decompSec, sol.Objective

		if !haveRef && cs.Monolithic {
			ses, err := inst.NewHorizonSession(w, solver.opt.QP)
			if err != nil {
				return out, fmt.Errorf("case %s mono session: %w", cs.Name, err)
			}
			start = time.Now()
			plan, err := ses.SolveCtx(ctx, core.HorizonInput{
				X0: x0, Demand: scn.Demand, Prices: scn.Prices,
			})
			if err != nil {
				return out, fmt.Errorf("case %s mono solve: %w", cs.Name, err)
			}
			ref = monoRef{seconds: time.Since(start).Seconds(), objective: plan.Objective}
			refs[key] = ref
			haveRef = true
		}
		if haveRef {
			rec.MonoSolveSec, rec.MonoObjective = ref.seconds, ref.objective
			if ref.objective != 0 {
				rec.CostGap = (sol.Objective - ref.objective) / math.Abs(ref.objective)
			}
			if decompSec > 0 {
				rec.Speedup = ref.seconds / decompSec
			}
		}
		if rec.Bench4DecompSec > 0 && decompSec > 0 {
			rec.SpeedupVsBench4 = rec.Bench4DecompSec / decompSec
		}

		if cs.SteadyPeriods > 0 {
			type periodStat struct {
				solves, rounds int
				held           bool
				sec            float64
			}
			stats := make([]periodStat, 0, cs.SteadyPeriods)
			state := sol.State
			for k := 0; k < cs.SteadyPeriods; k++ {
				if err := ctx.Err(); err != nil {
					return out, err
				}
				start = time.Now()
				psol, err := solver.SolveCtx(ctx, state, scn.Demand, scn.Prices)
				if err != nil {
					return out, fmt.Errorf("case %s steady period %d: %w", cs.Name, k, err)
				}
				stats = append(stats, periodStat{
					solves: psol.ShardSolves, rounds: psol.Rounds,
					held: psol.HeldShards == len(part.Shards),
					sec:  time.Since(start).Seconds(),
				})
				rec.SteadySkipped += psol.SkippedShards
				state = psol.State
			}
			// Settled window: the second half of the tail, past the
			// transient where the MPC state is still absorbing the cold
			// plan and every shard legitimately re-solves.
			window := stats[len(stats)/2:]
			var solves, rounds, held int
			var sec float64
			for _, st := range window {
				solves += st.solves
				rounds += st.rounds
				sec += st.sec
				if st.held {
					held++
				}
			}
			n := float64(len(window))
			rec.SteadyPeriods = cs.SteadyPeriods
			rec.SteadyDirtyFrac = float64(solves) / (n * float64(len(part.Shards)))
			rec.SteadyRounds = float64(rounds) / n
			rec.SteadyHeldPeriods = held
			rec.SteadySecPeriod = sec / n
		}
		out = append(out, rec)
	}
	return out, nil
}

// SteadyGuardPeriods is the tail length from which the steady-state
// metrics are guard-grade: on the bench scenarios the quiet MPC loop
// reaches its absorbing full-carry state after roughly 45 periods, so a
// tail of 50+ periods (metrics over the second half) measures the
// settled regime, while shorter tails still straddle the transient and
// are recorded for the curve but not asserted on.
const SteadyGuardPeriods = 50

// DefaultIncrementalCases returns the BENCH_5 case list — the BENCH_4
// geometries, so the two curves compare point for point. Smoke sizes run
// a guard-grade quiet tail (they back the steady-state CI check); the
// continental sizes run a short recorded tail, and the frontier only the
// cold solve.
func DefaultIncrementalCases(full bool) []IncrementalCase {
	steady := map[string]int{
		"n120-shards4":   2 * SteadyGuardPeriods,
		"n240-shards8":   2 * SteadyGuardPeriods,
		"n500-shards4":   24,
		"n1000-shards4":  16,
		"n1000-shards8":  16,
		"n1000-shards16": 16,
	}
	var out []IncrementalCase
	for _, cs := range DefaultScalingCases(full) {
		out = append(out, IncrementalCase{ScalingCase: cs, SteadyPeriods: steady[cs.Name]})
	}
	return out
}

package decomp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"dspp/internal/core"
	"dspp/internal/qp"
	"dspp/internal/telemetry"
)

// randomInstance builds a small instance with a random support pattern:
// every location gets 1–3 feasible DCs, all capacitated.
func randomInstance(t *testing.T, rng *rand.Rand, l, v int) *core.Instance {
	t.Helper()
	sla := make([][]float64, l)
	for li := range sla {
		sla[li] = make([]float64, v)
		for vi := range sla[li] {
			sla[li][vi] = math.Inf(1)
		}
	}
	for vi := 0; vi < v; vi++ {
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			sla[rng.Intn(l)][vi] = 0.5 + rng.Float64()
		}
	}
	rec := make([]float64, l)
	caps := make([]float64, l)
	for li := range rec {
		rec[li] = 1
		caps[li] = 50 + 50*rng.Float64()
	}
	inst, err := core.NewInstance(core.Config{SLA: sla, ReconfigWeights: rec, Capacities: caps})
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	return inst
}

// bruteComponents computes the location components of the support graph
// by repeated DFS over an explicit location×location adjacency.
func bruteComponents(inst *core.Instance) [][]int {
	v := inst.NumLocations()
	adj := make([][]bool, v)
	for i := range adj {
		adj[i] = make([]bool, v)
	}
	for a := 0; a < v; a++ {
		for b := a + 1; b < v; b++ {
			for l := 0; l < inst.NumDataCenters(); l++ {
				if inst.Feasible(l, a) && inst.Feasible(l, b) {
					adj[a][b], adj[b][a] = true, true
					break
				}
			}
		}
	}
	seen := make([]bool, v)
	var comps [][]int
	for s := 0; s < v; s++ {
		if seen[s] {
			continue
		}
		var comp, stack []int
		stack = append(stack, s)
		seen[s] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for y := 0; y < v; y++ {
				if adj[x][y] && !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func TestPartitionMatchesBruteForceComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(t, rng, 2+rng.Intn(8), 2+rng.Intn(30))
		part, err := NewPartition(inst, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteComponents(inst)
		if len(part.Shards) != len(want) {
			t.Fatalf("trial %d: %d shards, want %d components", trial, len(part.Shards), len(want))
		}
		// Same partition of locations: compare via a location→component
		// label map from each side.
		label := make(map[int]int)
		for ci, comp := range want {
			for _, v := range comp {
				label[v] = ci
			}
		}
		for si, sh := range part.Shards {
			if len(sh.Locations) == 0 {
				t.Fatalf("trial %d: empty shard %d", trial, si)
			}
			c0 := label[sh.Locations[0]]
			for _, v := range sh.Locations {
				if label[v] != c0 {
					t.Fatalf("trial %d: shard %d mixes components", trial, si)
				}
			}
			if len(sh.Locations) != len(want[c0]) {
				t.Fatalf("trial %d: shard %d has %d locations, component %d has %d",
					trial, si, len(sh.Locations), c0, len(want[c0]))
			}
		}
	}
}

func TestPartitionMaxShardSize(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 200, DCSites: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(scn.Inst, 25)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 200)
	for _, sh := range part.Shards {
		if len(sh.Locations) > 25 {
			t.Fatalf("shard has %d locations > 25", len(sh.Locations))
		}
		for _, v := range sh.Locations {
			if seen[v] {
				t.Fatalf("location %d in two shards", v)
			}
			seen[v] = true
		}
		// Every feasible DC of every member must be inside the shard.
		dcSet := make(map[int]bool, len(sh.DCs))
		for _, dc := range sh.DCs {
			dcSet[dc] = true
		}
		for _, v := range sh.Locations {
			for _, dc := range scn.Inst.FeasibleDCs(v, nil) {
				if !dcSet[dc] {
					t.Fatalf("location %d's DC %d missing from its shard", v, dc)
				}
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("location %d unassigned", v)
		}
	}
	if len(part.Shards) < 8 {
		t.Fatalf("got %d shards, expected ≥ 8 at cap 25", len(part.Shards))
	}
	st := part.Stats()
	if st.Shards != len(part.Shards) || st.MaxLocations > 25 || st.SharedDCs != len(part.SharedDCs) {
		t.Fatalf("inconsistent stats: %+v", st)
	}
}

func TestSolverDeterministicAcrossWorkers(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 160, DCSites: 16, Seed: 21, Utilization: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) *Solution {
		part, err := NewPartition(scn.Inst, 40)
		if err != nil {
			t.Fatal(err)
		}
		solver, err := NewSolver(scn.Inst, 2, part, Options{Workers: workers, NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := solver.SolveCtx(context.Background(), scn.Inst.NewState(), scn.Demand, scn.Prices)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a, b := solve(1), solve(8)
	if a.Objective != b.Objective || a.Rounds != b.Rounds || a.Converged != b.Converged {
		t.Fatalf("worker count changed the result: obj %v vs %v, rounds %d vs %d",
			a.Objective, b.Objective, a.Rounds, b.Rounds)
	}
	for l := range a.State {
		for v := range a.State[l] {
			if a.State[l][v] != b.State[l][v] {
				t.Fatalf("state[%d][%d] differs: %v vs %v", l, v, a.State[l][v], b.State[l][v])
			}
		}
	}
}

func TestCostGapVsMonolithic(t *testing.T) {
	for _, util := range []float64{0.5, 0.85} {
		scn, err := NewScenario(ScenarioConfig{Locations: 120, DCSites: 12, Seed: 31, Utilization: util})
		if err != nil {
			t.Fatal(err)
		}
		inst := scn.Inst
		part, err := NewPartition(inst, 30)
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Shards) < 2 {
			t.Fatalf("util %g: want a real decomposition, got %d shards", util, len(part.Shards))
		}
		solver, err := NewSolver(inst, 2, part, Options{NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		x0 := inst.NewState()
		sol, err := solver.SolveCtx(context.Background(), x0, scn.Demand, scn.Prices)
		if err != nil {
			t.Fatal(err)
		}
		mono, err := inst.SolveHorizon(core.HorizonInput{X0: x0, Demand: scn.Demand, Prices: scn.Prices}, qp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gap := (sol.Objective - mono.Objective) / math.Abs(mono.Objective)
		if gap > 0.01 {
			t.Fatalf("util %g: cost gap %.4f > 1%% (decomp %.6g vs mono %.6g, %d rounds, converged=%t)",
				util, gap, sol.Objective, mono.Objective, sol.Rounds, sol.Converged)
		}
		if gap < -1e-6 {
			t.Fatalf("util %g: decomposed objective %.6g below the monolithic optimum %.6g — infeasible split",
				util, sol.Objective, mono.Objective)
		}
		// The assembled state must satisfy the true capacities and demand.
		slack, err := inst.DemandSlack(sol.State, scn.Demand[0])
		if err != nil {
			t.Fatal(err)
		}
		for v, sl := range slack {
			if sl < -1e-6 {
				t.Fatalf("util %g: location %d demand violated by %g", util, v, -sl)
			}
		}
		byDC := sol.State.TotalByDC()
		for l, tot := range byDC {
			c, _ := inst.Capacity(l)
			if tot > c*(1+1e-9) {
				t.Fatalf("util %g: DC %d over capacity: %g > %g", util, l, tot, c)
			}
		}
	}
}

func TestCoordinationCancellation(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 240, DCSites: 24, Seed: 51, Utilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(scn.Inst, 30)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewSolver(scn.Inst, 2, part, Options{Workers: 4, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err = solver.SolveCtx(ctx, scn.Inst.NewState(), scn.Demand, scn.Prices)
	if err == nil {
		// The solve may legitimately win the race; re-run with an
		// already-cancelled context, which must always fail.
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		_, err = solver.SolveCtx(ctx2, scn.Inst.NewState(), scn.Demand, scn.Prices)
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	// The solver must remain usable after a cancelled solve.
	sol, err := solver.SolveCtx(context.Background(), scn.Inst.NewState(), scn.Demand, scn.Prices)
	if err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
	if sol.Rounds < 1 {
		t.Fatal("no rounds recorded")
	}
}

func TestControllerBypassSmallInstance(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 12, DCSites: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(scn.Inst, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Partition() != nil {
		t.Fatal("expected bypass for a 12-location instance")
	}
	ref, err := core.NewController(scn.Inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		_, got, err := ctrl.Step(scn.Demand, scn.Prices)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ref.Step(scn.Demand, scn.Prices)
		if err != nil {
			t.Fatal(err)
		}
		for l := range got {
			for v := range got[l] {
				if math.Abs(got[l][v]-res.NewState[l][v]) > 1e-9 {
					t.Fatalf("step %d: bypass state diverges from core controller at [%d][%d]", k, l, v)
				}
			}
		}
		if ctrl.LastDegradation().Mode != core.DegradeNone {
			t.Fatalf("step %d: unexpected degradation %v", k, ctrl.LastDegradation())
		}
	}
}

func TestControllerMonolithicFallback(t *testing.T) {
	hub := telemetry.New()
	scn, err := NewScenario(ScenarioConfig{Locations: 160, DCSites: 16, Seed: 71, Utilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// One round with a microscopic tolerance cannot converge while any
	// shared capacity binds, so the controller must take the monolithic
	// rung — and still produce an exact, feasible step.
	ctrl, err := NewController(scn.Inst, 2, Options{
		MaxShardSize: 40, MaxRounds: 1, Tol: 1e-12, Telemetry: hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Partition() == nil {
		t.Fatal("expected a real decomposition")
	}
	_, state, err := ctrl.Step(scn.Demand, scn.Prices)
	if err != nil {
		t.Fatal(err)
	}
	deg := ctrl.LastDegradation()
	if deg.Mode != core.DegradeMonolithic {
		t.Fatalf("expected monolithic fallback, got %v", deg)
	}
	if deg.Cause == "" {
		t.Fatal("fallback must record its cause")
	}
	// The fallback plan is the exact monolithic solve.
	ref, err := core.NewController(scn.Inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Step(scn.Demand, scn.Prices)
	if err != nil {
		t.Fatal(err)
	}
	for l := range state {
		for v := range state[l] {
			if math.Abs(state[l][v]-res.NewState[l][v]) > 1e-9 {
				t.Fatalf("fallback state diverges from monolithic at [%d][%d]", l, v)
			}
		}
	}
}

func TestControllerConvergedStep(t *testing.T) {
	hub := telemetry.New()
	scn, err := NewScenario(ScenarioConfig{Locations: 160, DCSites: 16, Seed: 81, Utilization: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(scn.Inst, 2, Options{MaxShardSize: 40, Telemetry: hub})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, _, err := ctrl.Step(scn.Demand, scn.Prices); err != nil {
			t.Fatal(err)
		}
		if m := ctrl.LastDegradation().Mode; m != core.DegradeNone {
			t.Fatalf("step %d degraded: %v", k, m)
		}
	}
	reg := hub.Registry()
	if v := reg.Gauge(telemetry.MetricDecompShards).Value(); v < 2 {
		t.Fatalf("dspp_decomp_shards = %g, want ≥ 2", v)
	}
	if v := reg.Counter(telemetry.MetricCoordinationRounds).Value(); v < 3 {
		t.Fatalf("dspp_coordination_rounds_total = %g, want ≥ 3", v)
	}
}

func TestRunScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke is seconds-long")
	}
	recs, err := RunScaling(context.Background(), []ScalingCase{
		{Name: "smoke", Locations: 80, DCSites: 8, MaxShardSize: 20, Monolithic: true, Seed: 91},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.CostGap < -1e-4 || r.CostGap > 0.01 {
		t.Fatalf("cost gap %.6f outside [-1e-4, 1%%]", r.CostGap)
	}
	if r.Shards < 2 || r.DecompSolveSec <= 0 || r.MonoSolveSec <= 0 {
		t.Fatalf("implausible record: %+v", r)
	}
}

func TestPartitionWeightedBalancesLoad(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 200, DCSites: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Skewed weights: the BFS sweep's first pops are the heavy hitters,
	// so the count-only cut piles them into one shard.
	v := scn.Inst.NumLocations()
	weights := make([]float64, v)
	for i := range weights {
		weights[i] = 1
		if i%5 == 0 {
			weights[i] = 50
		}
	}
	maxW := func(p *Partition) float64 {
		var m float64
		for _, sh := range p.Shards {
			var w float64
			for _, vi := range sh.Locations {
				w += weights[vi]
			}
			if w > m {
				m = w
			}
		}
		return m
	}
	plain, err := NewPartition(scn.Inst, 25)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := NewPartitionWeighted(scn.Inst, 25, weights)
	if err != nil {
		t.Fatal(err)
	}
	// Same structural invariants as the unweighted splitter.
	seen := make([]bool, v)
	for _, sh := range weighted.Shards {
		if len(sh.Locations) > 25 {
			t.Fatalf("weighted shard has %d locations > 25", len(sh.Locations))
		}
		dcSet := make(map[int]bool, len(sh.DCs))
		for _, dc := range sh.DCs {
			dcSet[dc] = true
		}
		for _, vi := range sh.Locations {
			if seen[vi] {
				t.Fatalf("location %d in two shards", vi)
			}
			seen[vi] = true
			for _, dc := range scn.Inst.FeasibleDCs(vi, nil) {
				if !dcSet[dc] {
					t.Fatalf("location %d's DC %d missing from its shard", vi, dc)
				}
			}
		}
	}
	for vi, ok := range seen {
		if !ok {
			t.Fatalf("location %d unassigned", vi)
		}
	}
	if mw, mp := maxW(weighted), maxW(plain); mw > mp {
		t.Fatalf("weighted split worse than count-only: max shard weight %g > %g", mw, mp)
	}
	// The weighted shards must still feed a working solver.
	solver, err := NewSolver(scn.Inst, 2, weighted, Options{NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.SolveCtx(context.Background(), scn.Inst.NewState(), scn.Demand, scn.Prices); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionWeightedNilAndErrors(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 80, DCSites: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewPartition(scn.Inst, 20)
	if err != nil {
		t.Fatal(err)
	}
	nilW, err := NewPartitionWeighted(scn.Inst, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nilW.Shards) != len(plain.Shards) {
		t.Fatalf("nil weights changed the partition: %d vs %d shards", len(nilW.Shards), len(plain.Shards))
	}
	for i := range plain.Shards {
		if len(nilW.Shards[i].Locations) != len(plain.Shards[i].Locations) {
			t.Fatalf("shard %d differs under nil weights", i)
		}
		for j, v := range plain.Shards[i].Locations {
			if nilW.Shards[i].Locations[j] != v {
				t.Fatalf("shard %d location %d differs under nil weights", i, j)
			}
		}
	}
	v := scn.Inst.NumLocations()
	if _, err := NewPartitionWeighted(scn.Inst, 20, make([]float64, v-1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short weights: err = %v", err)
	}
	bad := make([]float64, v)
	bad[3] = math.NaN()
	if _, err := NewPartitionWeighted(scn.Inst, 20, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NaN weight: err = %v", err)
	}
	bad[3] = -1
	if _, err := NewPartitionWeighted(scn.Inst, 20, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative weight: err = %v", err)
	}
}

func TestCoordinationDeadlineReturnsFeasibleIterate(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 240, DCSites: 24, Seed: 51, Utilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(scn.Inst, 30)
	if err != nil {
		t.Fatal(err)
	}
	// A tolerance the loop can never meet keeps rounds coming until the
	// deadline check has to stop them.
	solver, err := NewSolver(scn.Inst, 2, part, Options{
		Workers: 4, NoFallback: true, MaxRounds: 100000, Tol: 1e-300,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	sol, err := solver.SolveCtx(ctx, scn.Inst.NewState(), scn.Demand, scn.Prices)
	if err != nil {
		t.Fatalf("deadline-bounded solve errored instead of returning its iterate: %v", err)
	}
	if !sol.DeadlineHit || sol.Converged {
		t.Fatalf("DeadlineHit=%t Converged=%t after %d rounds, want deadline stop",
			sol.DeadlineHit, sol.Converged, sol.Rounds)
	}
	if sol.Rounds < 1 {
		t.Fatal("no complete round before the deadline")
	}
	// The returned iterate must be capacity-feasible for the full
	// instance whether or not the final round completed.
	byDC := sol.State.TotalByDC()
	for l, tot := range byDC {
		c, _ := scn.Inst.Capacity(l)
		if tot > c*(1+1e-9) {
			t.Fatalf("DC %d over capacity: %g > %g", l, tot, c)
		}
	}
	// Demand feasibility is the stronger between-rounds contract: it
	// holds when every shard's final-round solve converged (Partial
	// unset). A deadline that fires inside a round leaves projected
	// anytime iterates, which only promise capacity feasibility.
	if !sol.Partial {
		slack, err := scn.Inst.DemandSlack(sol.State, scn.Demand[0])
		if err != nil {
			t.Fatal(err)
		}
		for v, sl := range slack {
			if sl < -1e-6 {
				t.Fatalf("location %d demand violated by %g", v, -sl)
			}
		}
	}
}

func TestControllerDeadlineAnytimeRung(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 240, DCSites: 24, Seed: 51, Utilization: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(scn.Inst, 2, Options{
		MaxShardSize: 30, Workers: 4, MaxRounds: 100000, Tol: 1e-300,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	applied, state, err := ctrl.StepCtx(ctx, scn.Demand, scn.Prices)
	if err != nil {
		t.Fatalf("deadline-bounded step errored: %v", err)
	}
	if applied == nil || state == nil {
		t.Fatal("nil plan from deadline-bounded step")
	}
	deg := ctrl.LastDegradation()
	if deg.Mode != core.DegradeAnytime {
		t.Fatalf("mode = %v, want anytime", deg.Mode)
	}
	if deg.Cause == "" {
		t.Error("anytime cause not recorded")
	}
}

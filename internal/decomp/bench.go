package decomp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dspp/internal/core"
	"dspp/internal/topology"
)

// Scenario SLA constants: Mu and MaxDelay are chosen so the feasibility
// radius (the distance past which the M/M/1 coefficient diverges) is a
// few hundred kilometers — a handful of DCs per location on a
// continental grid, which is the regime the decomposition targets.
const (
	scenarioMu       = 1000.0 // per-server service rate (req/s)
	scenarioMaxDelay = 0.0078 // SLA latency bound (s)
	scenarioLastMile = 0.002  // per-endpoint access delay (s)
	// scenarioReach is the generator's coverage budget: strictly inside
	// the SLA cutoff MaxDelay − 1/Mu = 0.0068 s, so every location's
	// anchor DC is always feasible.
	scenarioReach = 0.0066
)

// ScenarioConfig sizes a synthetic continental benchmark scenario.
type ScenarioConfig struct {
	Locations, DCSites int
	Seed               int64
	Horizon            int
	// Utilization is the fraction of aggregate DC capacity the steady
	// demand requires (default 0.6; higher values exercise the quota
	// coordination harder).
	Utilization float64
}

// Scenario is a ready-to-solve continental instance: steady forecasts
// (identical across the horizon) and a zero initial state.
type Scenario struct {
	Inst           *core.Instance
	Net            *topology.ContinentalNetwork
	Demand, Prices [][]float64
}

// NewScenario generates the continental topology, converts it to a DSPP
// instance under the scenario SLA, and sizes uniform DC capacities so
// aggregate demand uses the configured fraction of them. Deterministic in
// the seed.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.Horizon < 1 {
		cfg.Horizon = 2
	}
	if cfg.Utilization <= 0 || cfg.Utilization >= 1 {
		cfg.Utilization = 0.6
	}
	net, err := topology.GenerateContinental(topology.ContinentalConfig{
		Locations:     cfg.Locations,
		DCSites:       cfg.DCSites,
		Seed:          cfg.Seed,
		LastMile:      scenarioLastMile,
		MaxReachDelay: scenarioReach,
	})
	if err != nil {
		return nil, err
	}
	latency := net.LatencyMatrix()
	sla, err := core.SLAMatrix(latency, core.SLAConfig{
		Mu: scenarioMu, MaxDelay: scenarioMaxDelay,
	})
	if err != nil {
		return nil, err
	}
	// Prune pairs beyond the generator's reach budget. Approaching the
	// SLA cutoff the M/M/1 coefficient diverges (Mu − 1/budget → 0⁺), so
	// without the clamp a location sitting just inside the cutoff gets an
	// enormous a^lv that wrecks the QP's conditioning while contributing
	// nothing (the pair can barely serve anyway). Coverage is safe: the
	// generator guarantees every location's anchor DC within the budget.
	for l := range sla {
		for v := range sla[l] {
			if latency[l][v] > scenarioReach {
				sla[l][v] = math.Inf(1)
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	demand := make([]float64, cfg.Locations)
	for v, site := range net.Access {
		demand[v] = float64(site.City.Population) * (0.008 + 0.004*rng.Float64())
	}
	// Size each DC's capacity off its own catchment: the servers it would
	// host if every location ran entirely on its most efficient (lowest-a)
	// feasible DC, divided by the target utilization. Uniform sizing would
	// leave hot DCs (dense catchments) over capacity at high utilization —
	// an infeasible instance — while per-catchment sizing keeps the
	// min-server assignment feasible by construction at any utilization,
	// with exactly 1/util headroom where the demand actually is. A floor
	// of a quarter of the mean keeps thin-catchment DCs usable as
	// spillover targets rather than degenerate slivers.
	need := make([]float64, cfg.DCSites)
	var needed float64
	for v := 0; v < cfg.Locations; v++ {
		best, bestL := math.Inf(1), -1
		for l := 0; l < cfg.DCSites; l++ {
			if sla[l][v] < best {
				best, bestL = sla[l][v], l
			}
		}
		need[bestL] += demand[v] * best
		needed += demand[v] * best
	}
	capFloor := needed / float64(cfg.DCSites) * 0.25 / cfg.Utilization
	caps := make([]float64, cfg.DCSites)
	rec := make([]float64, cfg.DCSites)
	prices := make([]float64, cfg.DCSites)
	for l := range caps {
		caps[l] = math.Max(need[l]/cfg.Utilization, capFloor)
		rec[l] = 1e-3
		prices[l] = 1 + 0.5*rng.Float64()
	}
	inst, err := core.NewInstance(core.Config{SLA: sla, ReconfigWeights: rec, Capacities: caps})
	if err != nil {
		return nil, err
	}
	s := &Scenario{Inst: inst, Net: net}
	for t := 0; t < cfg.Horizon; t++ {
		s.Demand = append(s.Demand, append([]float64(nil), demand...))
		s.Prices = append(s.Prices, append([]float64(nil), prices...))
	}
	return s, nil
}

// ScalingCase is one point of the shard-scaling curve.
type ScalingCase struct {
	Name               string
	Locations, DCSites int
	MaxShardSize       int
	Horizon            int
	Utilization        float64
	Seed               int64
	// Monolithic measures the full-instance reference solve for this
	// scenario. Cases sharing a scenario reuse the first measurement, so
	// a shard sweep pays for the (expensive) monolithic solve once.
	Monolithic bool
}

// ScalingRecord is one measured point, shaped for BENCH_4.json.
type ScalingRecord struct {
	Name            string  `json:"name"`
	Locations       int     `json:"locations"`
	DCs             int     `json:"dcs"`
	Pairs           int     `json:"pairs"`
	Shards          int     `json:"shards"`
	SharedDCs       int     `json:"shared_dcs"`
	MaxShardSize    int     `json:"max_shard_size"`
	Rounds          int     `json:"rounds"`
	Converged       bool    `json:"converged"`
	DecompSolveSec  float64 `json:"decomp_solve_sec"`
	MonoSolveSec    float64 `json:"mono_solve_sec"`
	DecompObjective float64 `json:"decomp_objective"`
	MonoObjective   float64 `json:"mono_objective"`
	// CostGap = (decomp − mono)/|mono|; −1 when the monolithic
	// reference was not measured at this size.
	CostGap float64 `json:"cost_gap"`
	// Speedup = mono/decomp solve seconds; 0 without a reference.
	Speedup float64 `json:"speedup"`
}

type scenarioKey struct {
	loc, dc, w int
	seed       int64
	util       float64
}

type monoRef struct {
	seconds   float64
	objective float64
}

// RunScaling measures the shard-scaling curve: for every case, one cold
// coordinated solve on a fresh solver, against (optionally) one cold
// monolithic solve of the same scenario. Monolithic references are cached
// per scenario, so a sweep over shard counts measures the reference once.
func RunScaling(ctx context.Context, cases []ScalingCase) ([]ScalingRecord, error) {
	refs := make(map[scenarioKey]monoRef)
	var out []ScalingRecord
	for _, cs := range cases {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		w := cs.Horizon
		if w < 1 {
			w = 2
		}
		scn, err := NewScenario(ScenarioConfig{
			Locations: cs.Locations, DCSites: cs.DCSites,
			Seed: cs.Seed, Horizon: w, Utilization: cs.Utilization,
		})
		if err != nil {
			return out, fmt.Errorf("case %s: %w", cs.Name, err)
		}
		inst := scn.Inst
		x0 := inst.NewState()

		part, err := NewPartition(inst, cs.MaxShardSize)
		if err != nil {
			return out, fmt.Errorf("case %s: %w", cs.Name, err)
		}
		solver, err := NewSolver(inst, w, part, Options{
			MaxShardSize: cs.MaxShardSize, NoFallback: true,
		})
		if err != nil {
			return out, fmt.Errorf("case %s: %w", cs.Name, err)
		}
		start := time.Now()
		sol, err := solver.SolveCtx(ctx, x0, scn.Demand, scn.Prices)
		if err != nil {
			return out, fmt.Errorf("case %s decomp solve: %w", cs.Name, err)
		}
		decompSec := time.Since(start).Seconds()

		rec := ScalingRecord{
			Name:      cs.Name,
			Locations: cs.Locations, DCs: cs.DCSites,
			Pairs:  inst.NumPairs(),
			Shards: len(part.Shards), SharedDCs: len(part.SharedDCs),
			MaxShardSize:    cs.MaxShardSize,
			Rounds:          sol.Rounds,
			Converged:       sol.Converged,
			DecompSolveSec:  decompSec,
			DecompObjective: sol.Objective,
			CostGap:         -1,
		}

		key := scenarioKey{loc: cs.Locations, dc: cs.DCSites, w: w, seed: cs.Seed, util: cs.Utilization}
		ref, haveRef := refs[key]
		if !haveRef && cs.Monolithic {
			ses, err := inst.NewHorizonSession(w, solver.opt.QP)
			if err != nil {
				return out, fmt.Errorf("case %s mono session: %w", cs.Name, err)
			}
			start = time.Now()
			plan, err := ses.SolveCtx(ctx, core.HorizonInput{
				X0: x0, Demand: scn.Demand, Prices: scn.Prices,
			})
			if err != nil {
				return out, fmt.Errorf("case %s mono solve: %w", cs.Name, err)
			}
			ref = monoRef{seconds: time.Since(start).Seconds(), objective: plan.Objective}
			refs[key] = ref
			haveRef = true
		}
		if haveRef {
			rec.MonoSolveSec = ref.seconds
			rec.MonoObjective = ref.objective
			if ref.objective != 0 {
				rec.CostGap = (sol.Objective - ref.objective) / math.Abs(ref.objective)
			}
			if decompSec > 0 {
				rec.Speedup = ref.seconds / decompSec
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// DefaultScalingCases returns the BENCH_4 case list. The smoke variant
// (small sizes, seconds total) runs in CI; the full variant adds the
// continental sizes, including the n=1000/m=100 point with its monolithic
// reference (minutes) and an n=2000 frontier the monolithic path is not
// asked to touch.
func DefaultScalingCases(full bool) []ScalingCase {
	smoke := []ScalingCase{
		{Name: "n120-shards2", Locations: 120, DCSites: 12, MaxShardSize: 60, Monolithic: true, Seed: 41},
		{Name: "n120-shards4", Locations: 120, DCSites: 12, MaxShardSize: 30, Monolithic: true, Seed: 41},
		{Name: "n240-shards8", Locations: 240, DCSites: 24, MaxShardSize: 30, Monolithic: true, Seed: 42},
	}
	if !full {
		return smoke
	}
	return append(smoke, []ScalingCase{
		{Name: "n500-shards4", Locations: 500, DCSites: 50, MaxShardSize: 125, Monolithic: true, Seed: 43},
		{Name: "n1000-shards2", Locations: 1000, DCSites: 100, MaxShardSize: 500, Monolithic: true, Seed: 44},
		{Name: "n1000-shards4", Locations: 1000, DCSites: 100, MaxShardSize: 250, Monolithic: true, Seed: 44},
		{Name: "n1000-shards8", Locations: 1000, DCSites: 100, MaxShardSize: 125, Monolithic: true, Seed: 44},
		{Name: "n1000-shards16", Locations: 1000, DCSites: 100, MaxShardSize: 63, Monolithic: true, Seed: 44},
		{Name: "n2000-frontier", Locations: 2000, DCSites: 200, MaxShardSize: 125, Monolithic: false, Seed: 45},
	}...)
}

package decomp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"dspp/internal/core"
	"dspp/internal/telemetry"
)

// DecomposeDecision is the cost-model verdict behind the controller's
// monolithic bypass.
type DecomposeDecision struct {
	// Bypass is true when one monolithic solve is modeled to beat the
	// coordinated sharded solve.
	Bypass bool
	// Ratio is the modeled coordinated cost relative to one monolithic
	// solve (< 1 favors decomposition).
	Ratio float64
	// Rounds is the coordination round count the model expected.
	Rounds int
}

// DecideBypass models whether coordinating the given partition beats one
// monolithic solve of the whole instance. Interior-point factorization
// cost scales cubically in the per-step variable count (the feasible
// pairs), so round one costs ~Σ E_i³ against the monolith's E³; the
// expected round count grows with the fraction of DCs whose capacity is
// shared across shards, since every shared DC is a coupling the quota
// loop must re-price (calibrated on the BENCH_4 curve: ~3 rounds at 20%
// shared, ~11 near-total sharing). Follow-on rounds run warm — and with
// incremental scheduling only the dirty shards — so they are charged at
// half a cold fan-out. The model reproduces the measured BENCH_4 cost
// ratios within ~2× at every size, which is enough to separate the
// n120-shards2 regression (ratio ≈ 1) from the wins (ratio ≤ 0.5).
func DecideBypass(inst *core.Instance, part *Partition, opt Options) DecomposeDecision {
	opt = opt.withDefaults()
	e := float64(inst.NumPairs())
	var sub float64
	var buf []int
	for _, sh := range part.Shards {
		var ei float64
		for _, v := range sh.Locations {
			buf = inst.FeasibleDCs(v, buf[:0])
			ei += float64(len(buf))
		}
		sub += ei * ei * ei
	}
	sharedFrac := 0.0
	if l := inst.NumDataCenters(); l > 0 {
		sharedFrac = float64(len(part.SharedDCs)) / float64(l)
	}
	rounds := 1 + int(math.Round(10*sharedFrac))
	if rounds > opt.MaxRounds {
		rounds = opt.MaxRounds
	}
	const beta = 0.5 // a warm follow-on round relative to the cold fan-out
	ratio := sub / (e * e * e) * (1 + beta*float64(rounds-1))
	return DecomposeDecision{
		Bypass: opt.BypassRatio >= 0 && ratio >= opt.BypassRatio,
		Ratio:  ratio,
		Rounds: rounds,
	}
}

// Controller is the decomposed MPC controller: the drop-in continental-
// scale replacement for core.Controller. It satisfies sim.Policy,
// sim.CtxPolicy, and sim.DegradationReporter structurally, so the
// simulation engine drives it like any other policy.
//
// Small instances (fewer than Options.BypassBelow locations, or a
// partition that yields a single shard) bypass decomposition entirely
// and delegate to a plain core.Controller — the coordination machinery
// only pays for itself once there are regions to separate.
type Controller struct {
	inst   *core.Instance
	w      int
	opt    Options
	solver *Solver // nil when bypassed
	byp    *core.Controller
	// fallback is the lazily built monolithic controller behind the
	// DegradeMonolithic rung; constructing it allocates the full
	// instance's dense horizon structure, so it only exists after the
	// first coordination failure.
	fallback *core.Controller

	state   core.State
	lastDeg core.Degradation
	lastSol *Solution
	stall   time.Duration
	label   string
	tel     *telemetry.Hub
	dec     DecomposeDecision
}

// ControllerOption customizes a Controller.
type ControllerOption func(*Controller)

// WithLabel overrides the policy name reported to the simulator.
func WithLabel(label string) ControllerOption {
	return func(c *Controller) { c.label = label }
}

// WithInitialState sets the starting allocation (default: all zeros).
func WithInitialState(s core.State) ControllerOption {
	return func(c *Controller) { c.state = s.Clone() }
}

// NewController builds the partition, the per-shard solver, and the MPC
// wrapper for the instance.
func NewController(inst *core.Instance, horizon int, opt Options, opts ...ControllerOption) (*Controller, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("horizon %d: %w", horizon, ErrBadConfig)
	}
	opt = opt.withDefaults()
	c := &Controller{inst: inst, w: horizon, opt: opt, tel: opt.Telemetry}
	for _, o := range opts {
		o(c)
	}
	if c.state == nil {
		c.state = inst.NewState()
	} else if err := inst.CheckState(c.state); err != nil {
		return nil, err
	}

	bypass := inst.NumLocations() < opt.BypassBelow
	if !bypass {
		part, err := NewPartition(inst, opt.MaxShardSize)
		if err != nil {
			return nil, err
		}
		switch {
		case len(part.Shards) <= 1:
			bypass = true
		default:
			// The partition is real; let the cost model decide whether
			// coordinating it actually beats one monolithic solve.
			c.dec = DecideBypass(inst, part, opt)
			if opt.BypassRatio >= 0 && c.dec.Bypass {
				bypass = true
				break
			}
			c.solver, err = NewSolver(inst, horizon, part, opt)
			if err != nil {
				return nil, err
			}
		}
	}
	if bypass {
		byp, err := core.NewController(inst, horizon,
			core.WithQPOptions(opt.QP),
			core.WithInitialState(c.state),
			core.WithTelemetry(opt.Telemetry))
		if err != nil {
			return nil, err
		}
		c.byp = byp
	}
	return c, nil
}

// Name implements sim.Policy.
func (c *Controller) Name() string {
	if c.label != "" {
		return c.label
	}
	if c.byp != nil {
		return fmt.Sprintf("mpc-w%d", c.w)
	}
	return fmt.Sprintf("decomp-w%d-s%d", c.w, c.solver.Shards())
}

// Horizon returns the prediction window W.
func (c *Controller) Horizon() int { return c.w }

// Bypassed reports whether the controller delegates to a monolithic
// core.Controller instead of coordinating shards.
func (c *Controller) Bypassed() bool { return c.byp != nil }

// BypassDecision returns the cost-model verdict computed at build time
// (zero value when the instance was too small for a partition to be
// built at all).
func (c *Controller) BypassDecision() DecomposeDecision { return c.dec }

// Partition returns the geographic partition (nil when the instance was
// small enough to bypass decomposition).
func (c *Controller) Partition() *Partition {
	if c.solver == nil {
		return nil
	}
	return c.solver.Partition()
}

// State implements sim.Policy.
func (c *Controller) State() core.State {
	if c.byp != nil {
		return c.byp.State()
	}
	return c.state.Clone()
}

// SetState overwrites the current allocation and drops the per-shard
// warm starts.
func (c *Controller) SetState(s core.State) error {
	if c.byp != nil {
		return c.byp.SetState(s)
	}
	if err := c.inst.CheckState(s); err != nil {
		return err
	}
	c.state = s.Clone()
	c.solver.Reset()
	return nil
}

// LastDegradation implements sim.DegradationReporter.
func (c *Controller) LastDegradation() core.Degradation { return c.lastDeg }

// LastSolution returns the previous coordinated step's Solution with its
// incremental accounting — rounds, shard solves, skipped shard-rounds,
// rank-k fast resolves, held shards. Nil when bypassed, before the first
// step, or when the step fell back to the monolithic rung.
func (c *Controller) LastSolution() *Solution { return c.lastSol }

// LastExplain implements core.Explainer: the dual-price surface of the
// last executed step. On the coordinated path it reads the Solution's
// retained final-round duals and the quota split they were computed
// under; a step that fell back to the monolithic rung reports that
// solve's duals instead. Zero Explain before the first step.
func (c *Controller) LastExplain() core.Explain {
	if c.byp != nil {
		return c.byp.LastExplain()
	}
	if s := c.lastSol; s != nil {
		return core.Explain{
			CapacityDuals: append([]float64(nil), s.CapacityDuals...),
			Quotas:        append([]float64(nil), s.Quotas...),
			ShardOfDC:     append([]int(nil), s.ShardOfDC...),
		}
	}
	if c.fallback != nil {
		return c.fallback.LastExplain()
	}
	return core.Explain{}
}

// SetStall injects artificial solver latency before each step — the same
// test plumbing as core.Controller.SetStall (the simulator's `stall`
// fault, the daemon's watchdog demos). Zero clears it.
func (c *Controller) SetStall(d time.Duration) {
	if c.byp != nil {
		c.byp.SetStall(d)
		return
	}
	c.stall = d
}

// Step implements sim.Policy.
func (c *Controller) Step(demand, prices [][]float64) (core.State, core.State, error) {
	return c.StepCtx(context.Background(), demand, prices)
}

// StepCtx implements sim.CtxPolicy: one coordinated MPC step. When the
// coordination loop fails (a shard solve error) or exhausts its round
// budget without converging, the step falls back to one monolithic
// horizon QP over the full instance — the DegradeMonolithic rung — and
// from there inherits core.Controller's remaining ladder (cold restart,
// soft relaxation, hold-last). With Options.NoFallback a non-converged
// iterate is applied as-is (it is feasible; only optimality is at stake)
// and shard errors surface to the caller. A context deadline that stops
// coordination between rounds applies the last complete iterate as the
// DegradeAnytime rung — feasible, not ε-stable — rather than starting a
// monolithic solve there is no time for.
func (c *Controller) StepCtx(ctx context.Context, demand, prices [][]float64) (core.State, core.State, error) {
	if c.byp != nil {
		res, err := c.byp.StepCtx(ctx, demand, prices)
		if err != nil {
			return nil, nil, err
		}
		c.lastDeg = res.Degradation
		return res.Applied, res.NewState, nil
	}
	if c.tel == nil {
		return c.stepCtx(ctx, demand, prices)
	}
	sp := c.tel.Tracer().Start(telemetry.SpanMPCStep, telemetry.SpanIDFromContext(ctx))
	applied, state, err := c.stepCtx(telemetry.ContextWithSpan(ctx, sp), demand, prices)
	if err != nil {
		sp.SetAttr(telemetry.Str("outcome", "error"))
	} else {
		sp.SetAttr(telemetry.Str("mode", c.lastDeg.Mode.String()))
	}
	sp.End()
	return applied, state, err
}

func (c *Controller) stepCtx(ctx context.Context, demand, prices [][]float64) (core.State, core.State, error) {
	if c.stall > 0 {
		// The injected latency counts against the caller's deadline, like
		// a genuinely slow coordination fan-out would.
		t := time.NewTimer(c.stall)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, nil, ctx.Err()
		}
	}
	c.lastSol = nil
	sol, err := c.solver.SolveCtx(ctx, c.state, demand, prices)
	switch {
	case err == nil && (sol.Converged || sol.DeadlineHit || c.opt.NoFallback):
		var deg core.Degradation
		if sol.ColdRestarts > 0 {
			deg.Mode = core.DegradeColdRestart
			deg.ColdRestarts = sol.ColdRestarts
		}
		if !sol.Converged {
			deg.Cause = fmt.Sprintf("coordination stopped after %d rounds without converging", sol.Rounds)
		}
		if sol.DeadlineHit {
			// The period deadline stopped coordination between rounds:
			// the applied iterate is feasible but not ε-stable — the
			// decomposed analogue of the solver's anytime rung. A
			// monolithic fallback would be pointless here; there is no
			// time left to solve anything bigger.
			deg.Mode = core.DegradeAnytime
			deg.Cause = fmt.Sprintf("period deadline reached after %d coordination rounds", sol.Rounds)
			if sol.Partial {
				deg.Cause += " (final round partial: anytime shard iterates)"
			}
		}
		c.lastDeg = deg
		c.lastSol = sol
		c.state = sol.State
		return sol.Applied, sol.State, nil
	case err != nil && (errors.Is(err, core.ErrBadInput) || ctx.Err() != nil):
		return nil, nil, err
	case err != nil && c.opt.NoFallback:
		return nil, nil, err
	}

	// Monolithic rung: solve the full instance once, exactly. The deeper
	// ladder rungs (cold restart, soft, hold) come along with the core
	// controller.
	cause := "coordination budget exhausted"
	if err != nil {
		cause = err.Error()
	}
	if c.fallback == nil {
		fb, ferr := core.NewController(c.inst, c.w, core.WithQPOptions(c.opt.QP))
		if ferr != nil {
			return nil, nil, ferr
		}
		c.fallback = fb
	}
	if err := c.fallback.SetState(c.state); err != nil {
		return nil, nil, err
	}
	res, err := c.fallback.StepCtx(ctx, demand, prices)
	if err != nil {
		return nil, nil, err
	}
	deg := res.Degradation
	// A clean (or merely cold-restarted) monolithic solve reports the
	// monolithic rung; a deeper rung keeps its own label.
	if deg.Mode == core.DegradeNone || deg.Mode == core.DegradeColdRestart {
		deg.Mode = core.DegradeMonolithic
	}
	if deg.Cause == "" {
		deg.Cause = cause
	}
	c.lastDeg = deg
	c.state = res.NewState.Clone()
	c.solver.Reset() // shard warm starts no longer match the trajectory
	return res.Applied, res.NewState, nil
}

// Package decomp implements continental-scale geographic decomposition of
// the DSPP (ROADMAP item 1): the location–DC support graph of a
// geo-realistic instance splits into weakly coupled regions, so the one
// monolithic horizon QP — whose banded-KKT factorization cost grows with
// the cube of the per-period support width — is replaced by per-region
// QPs over narrow sub-instances plus a dual-price coordination loop that
// re-divides the capacity of DCs shared between regions. Each region
// reuses the existing core.HorizonSession fast path (warm starts,
// factorization reuse, 2-alloc solves) on its sub-instance, and regions
// solve concurrently via internal/parallel.
package decomp

import (
	"errors"
	"fmt"
	"math"

	"dspp/internal/core"
)

// Sentinel errors.
var (
	// ErrBadConfig flags invalid decomposition options.
	ErrBadConfig = errors.New("decomp: invalid configuration")
	// ErrCoordination means the dual-price loop could not produce a plan
	// (only returned with NoFallback; otherwise the monolithic rung runs).
	ErrCoordination = errors.New("decomp: coordination failed")
)

// Shard is one region of the partition: a set of locations plus every DC
// any of them can reach within the SLA. Locations partition across
// shards; DCs may repeat (those are the shared DCs coordination prices).
type Shard struct {
	// Locations lists the shard's global location indices, ascending.
	Locations []int
	// DCs lists the global DC indices feasible for at least one shard
	// location, ascending.
	DCs []int
}

// Partition is a geographic sharding of an instance's support graph.
type Partition struct {
	// Shards are the regions, in deterministic construction order.
	Shards []Shard
	// DCShards[l] is the number of shards DC l appears in (0 for DCs no
	// location can reach).
	DCShards []int
	// SharedDCs lists the DCs with DCShards > 1, ascending — the only
	// coupling between regions.
	SharedDCs []int
}

// Stats summarizes a partition for reports (the dsppsim header).
type Stats struct {
	// Shards is the region count.
	Shards int
	// MinLocations/MaxLocations bound the shard sizes.
	MinLocations, MaxLocations int
	// SharedDCs counts DCs appearing in more than one shard.
	SharedDCs int
	// MaxCoupling is the largest number of shards any single DC spans
	// (1 when the regions are fully independent).
	MaxCoupling int
	// MeanCoupling averages the span over shared DCs (0 when none).
	MeanCoupling float64
}

// Stats computes the partition's summary statistics.
func (p *Partition) Stats() Stats {
	st := Stats{Shards: len(p.Shards), SharedDCs: len(p.SharedDCs), MaxCoupling: 1}
	for i, s := range p.Shards {
		n := len(s.Locations)
		if i == 0 || n < st.MinLocations {
			st.MinLocations = n
		}
		if n > st.MaxLocations {
			st.MaxLocations = n
		}
	}
	var couplingSum int
	for _, l := range p.SharedDCs {
		if p.DCShards[l] > st.MaxCoupling {
			st.MaxCoupling = p.DCShards[l]
		}
		couplingSum += p.DCShards[l]
	}
	if len(p.SharedDCs) > 0 {
		st.MeanCoupling = float64(couplingSum) / float64(len(p.SharedDCs))
	}
	return st
}

// String renders the stats on one line, alongside the SupportStats header.
func (s Stats) String() string {
	return fmt.Sprintf("shards=%d sizes=[%d..%d] shared-DCs=%d coupling(max/mean)=%d/%.1f",
		s.Shards, s.MinLocations, s.MaxLocations, s.SharedDCs, s.MaxCoupling, s.MeanCoupling)
}

// NewPartition shards the instance's locations along the connected
// components of the location–DC support graph. Components larger than
// maxShardSize (0 = unbounded) are split by a breadth-first sweep over
// the support adjacency: BFS order keeps geographically adjacent
// locations together, so the cut runs through the thinnest part of the
// component the frontier reaches — a greedy stand-in for a min-cut that
// needs no weights and is deterministic. Every shard contains the full
// feasible-DC set of each of its locations, so shard sub-instances are
// always individually feasible and the only inter-shard coupling is
// capacity on the DCs two shards both list.
func NewPartition(inst *core.Instance, maxShardSize int) (*Partition, error) {
	return newPartition(inst, maxShardSize, nil)
}

// NewPartitionWeighted is NewPartition with a per-location work weight
// (typically mean forecast demand): oversized components are still swept
// breadth-first, but a shard is also cut once its accumulated weight
// reaches an equal share of the component's total, while never exceeding
// maxShardSize locations. Deadline budgeting divides a fixed wall-clock
// across concurrent shard solves, so balancing shards by load instead of
// location count evens out per-shard solve times — the count-only cut
// can put every hot location in one shard and make it the straggler
// every period. Weights must be non-negative and finite, one per
// location; an all-zero component falls back to the unweighted cut. A
// nil weights slice is exactly NewPartition.
func NewPartitionWeighted(inst *core.Instance, maxShardSize int, weights []float64) (*Partition, error) {
	return newPartition(inst, maxShardSize, weights)
}

func newPartition(inst *core.Instance, maxShardSize int, weights []float64) (*Partition, error) {
	if inst == nil {
		return nil, fmt.Errorf("nil instance: %w", ErrBadConfig)
	}
	if maxShardSize < 0 {
		return nil, fmt.Errorf("max shard size %d: %w", maxShardSize, ErrBadConfig)
	}
	v := inst.NumLocations()
	l := inst.NumDataCenters()
	if weights != nil {
		if len(weights) != v {
			return nil, fmt.Errorf("%d weights for %d locations: %w", len(weights), v, ErrBadConfig)
		}
		for i, w := range weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("weight[%d] = %g: %w", i, w, ErrBadConfig)
			}
		}
	}

	// Connected components by union-find: every location sharing a DC
	// joins that DC's first location.
	parent := make([]int, v)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra { // smallest root wins: deterministic labels
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	dcFirst := make([]int, l)
	for i := range dcFirst {
		dcFirst[i] = -1
	}
	var dcBuf []int
	for vi := 0; vi < v; vi++ {
		dcBuf = inst.FeasibleDCs(vi, dcBuf[:0])
		for _, dc := range dcBuf {
			if dcFirst[dc] < 0 {
				dcFirst[dc] = vi
			} else {
				union(dcFirst[dc], vi)
			}
		}
	}
	// Gather components in ascending-root order (ascending members).
	compOf := make(map[int]int)
	var comps [][]int
	for vi := 0; vi < v; vi++ {
		r := find(vi)
		ci, ok := compOf[r]
		if !ok {
			ci = len(comps)
			compOf[r] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], vi)
	}

	part := &Partition{DCShards: make([]int, l)}
	visited := make([]bool, v)
	dcStamp := make([]int, l)
	for i := range dcStamp {
		dcStamp[i] = -1
	}
	shardID := 0
	var locBuf []int
	flush := func(locs []int) {
		if len(locs) == 0 {
			return
		}
		sh := Shard{Locations: locs}
		for _, vi := range locs {
			dcBuf = inst.FeasibleDCs(vi, dcBuf[:0])
			for _, dc := range dcBuf {
				if dcStamp[dc] != shardID {
					dcStamp[dc] = shardID
					sh.DCs = append(sh.DCs, dc)
					part.DCShards[dc]++
				}
			}
		}
		sortInts(sh.DCs)
		part.Shards = append(part.Shards, sh)
		shardID++
	}
	for _, comp := range comps {
		if maxShardSize == 0 || len(comp) <= maxShardSize {
			flush(append([]int(nil), comp...))
			continue
		}
		// Weighted cut target: an equal share of the component's total
		// weight per shard, at the shard count the count-only cut would
		// produce. Zero total weight (or no weights) disables the
		// weighted cut and leaves the every-maxShardSize-pops rule.
		target := math.Inf(1)
		if weights != nil {
			var compW float64
			for _, vi := range comp {
				compW += weights[vi]
			}
			if compW > 0 {
				nShards := (len(comp) + maxShardSize - 1) / maxShardSize
				target = compW / float64(nShards)
			}
		}
		// BFS split: sweep the component from its lowest location, cutting
		// a shard every maxShardSize pops or — weighted — once the shard
		// holds its share of the component's demand.
		var cur, queue []int
		var curW float64
		for _, seed := range comp {
			if visited[seed] {
				continue
			}
			visited[seed] = true
			queue = append(queue, seed)
			for len(queue) > 0 {
				vi := queue[0]
				queue = queue[1:]
				cur = append(cur, vi)
				if weights != nil {
					curW += weights[vi]
				}
				if len(cur) == maxShardSize || curW >= target {
					sortInts(cur)
					flush(cur)
					cur, curW = nil, 0
				}
				dcBuf = inst.FeasibleDCs(vi, dcBuf[:0])
				for _, dc := range dcBuf {
					locBuf = inst.FeasibleLocations(dc, locBuf[:0])
					for _, vj := range locBuf {
						if !visited[vj] {
							visited[vj] = true
							queue = append(queue, vj)
						}
					}
				}
			}
		}
		sortInts(cur)
		flush(cur)
	}
	for dc, n := range part.DCShards {
		if n > 1 {
			part.SharedDCs = append(part.SharedDCs, dc)
		}
	}
	return part, nil
}

// sortInts is insertion sort: shard DC lists are short and nearly sorted
// (FeasibleDCs emits ascending per location), so this beats pulling in
// package sort for the hot construction path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

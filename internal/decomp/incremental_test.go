package decomp

import (
	"context"
	"math"
	"testing"

	"dspp/internal/core"
)

// mpcSeq drives solver through periods sequential MPC steps over a fixed
// forecast (the quiet-steady-state workload) and returns every solution.
func mpcSeq(t *testing.T, solver *Solver, inst *core.Instance, demand, prices [][]float64, periods int) []*Solution {
	t.Helper()
	x0 := inst.NewState()
	out := make([]*Solution, 0, periods)
	for k := 0; k < periods; k++ {
		sol, err := solver.SolveCtx(context.Background(), x0, demand, prices)
		if err != nil {
			t.Fatalf("period %d: %v", k, err)
		}
		x0 = sol.State
		out = append(out, sol)
	}
	return out
}

func newIncrementalScenario(t *testing.T) *Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{Locations: 160, DCSites: 16, Seed: 21, Utilization: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestIncrementalDisabledBitwise pins the escape hatch: with
// NoIncremental the refactored loop re-solves every shard every round, so
// results are bitwise identical at any worker count (the PR 6
// determinism contract) and no shard-round is ever skipped.
func TestIncrementalDisabledBitwise(t *testing.T) {
	scn := newIncrementalScenario(t)
	run := func(workers int) []*Solution {
		part, err := NewPartition(scn.Inst, 40)
		if err != nil {
			t.Fatal(err)
		}
		solver, err := NewSolver(scn.Inst, 2, part, Options{
			Workers: workers, NoFallback: true, NoIncremental: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mpcSeq(t, solver, scn.Inst, scn.Demand, scn.Prices, 3)
	}
	a, b := run(1), run(8)
	for k := range a {
		if a[k].Objective != b[k].Objective || a[k].Rounds != b[k].Rounds {
			t.Fatalf("period %d: worker count changed the result: obj %v vs %v, rounds %d vs %d",
				k, a[k].Objective, b[k].Objective, a[k].Rounds, b[k].Rounds)
		}
		if a[k].SkippedShards != 0 || a[k].HeldShards != 0 {
			t.Fatalf("period %d: NoIncremental skipped %d shard-rounds, held %d shards",
				k, a[k].SkippedShards, a[k].HeldShards)
		}
		if f := a[k].DirtyFraction(); f != 1 {
			t.Fatalf("period %d: NoIncremental dirty fraction %g, want 1", k, f)
		}
		for l := range a[k].State {
			for v := range a[k].State[l] {
				if a[k].State[l][v] != b[k].State[l][v] {
					t.Fatalf("period %d: state[%d][%d] differs across worker counts", k, l, v)
				}
				if a[k].Applied[l][v] != b[k].Applied[l][v] {
					t.Fatalf("period %d: applied[%d][%d] differs across worker counts", k, l, v)
				}
			}
		}
	}
}

// TestIncrementalMatchesFullLoop compares default (incremental) against
// NoIncremental on the same MPC sequence: both must converge, agree
// within the coordination tolerance, and the incremental run must
// actually skip shard-rounds while staying feasible. The tight
// coordination tolerance drives the loop deep into the damped quota
// tail, where sub-DirtyTol movements let clean shards sit out rounds —
// and across periods the persistent damping lets the incremental loop
// re-converge in a couple of rounds where the full loop needs dozens.
func TestIncrementalMatchesFullLoop(t *testing.T) {
	scn := newIncrementalScenario(t)
	run := func(opt Options) []*Solution {
		part, err := NewPartition(scn.Inst, 40)
		if err != nil {
			t.Fatal(err)
		}
		opt.NoFallback = true
		opt.Tol = 1e-5
		opt.MaxRounds = 60
		solver, err := NewSolver(scn.Inst, 2, part, opt)
		if err != nil {
			t.Fatal(err)
		}
		return mpcSeq(t, solver, scn.Inst, scn.Demand, scn.Prices, 3)
	}
	inc, full := run(Options{}), run(Options{NoIncremental: true})
	if s, f := sumSolves(inc), sumSolves(full); s >= f {
		t.Fatalf("incremental run used %d shard solves, full loop %d — no saving", s, f)
	}
	skipped := 0
	for k := range inc {
		if !inc[k].Converged || !full[k].Converged {
			t.Fatalf("period %d: converged inc=%t full=%t", k, inc[k].Converged, full[k].Converged)
		}
		gap := math.Abs(inc[k].Objective-full[k].Objective) / math.Abs(full[k].Objective)
		if gap > 5e-3 {
			t.Fatalf("period %d: incremental objective drifts %.2e from the full loop", k, gap)
		}
		skipped += inc[k].SkippedShards
		if inc[k].ShardSolves+inc[k].SkippedShards != inc[k].Rounds*len(incShards(t, scn)) {
			t.Fatalf("period %d: solve accounting inconsistent: %d+%d vs %d rounds",
				k, inc[k].ShardSolves, inc[k].SkippedShards, inc[k].Rounds)
		}
	}
	if skipped == 0 {
		t.Fatal("incremental scheduling never skipped a shard-round on a multi-round scenario")
	}
	// The final incremental state must satisfy the true demand/capacity.
	last := inc[len(inc)-1]
	slack, err := scn.Inst.DemandSlack(last.State, scn.Demand[0])
	if err != nil {
		t.Fatal(err)
	}
	for v, sl := range slack {
		if sl < -1e-6 {
			t.Fatalf("location %d demand violated by %g", v, -sl)
		}
	}
	for l, tot := range last.State.TotalByDC() {
		c, _ := scn.Inst.Capacity(l)
		if tot > c*(1+1e-9) {
			t.Fatalf("DC %d over capacity: %g > %g", l, tot, c)
		}
	}
}

func sumSolves(sols []*Solution) int {
	n := 0
	for _, s := range sols {
		n += s.ShardSolves
	}
	return n
}

func incShards(t *testing.T, scn *Scenario) []Shard {
	t.Helper()
	part, err := NewPartition(scn.Inst, 40)
	if err != nil {
		t.Fatal(err)
	}
	return part.Shards
}

// TestRankKFastPathGap exercises the opt-in capacity fast path inside
// the coordination loop: with RankK on, dirty-shard re-solves after
// round 0 ride the rank-k continuation and must land within the
// coordination tolerance of the plain incremental run. (The per-resolve
// ≤1e-6 accuracy claim is pinned at the session level by
// core.TestResolveCapacitiesMatchesFullSolve, without the quota loop's
// chaotic amplification of per-solve dual noise in between.)
func TestRankKFastPathGap(t *testing.T) {
	scn := newIncrementalScenario(t)
	run := func(opt Options) []*Solution {
		part, err := NewPartition(scn.Inst, 40)
		if err != nil {
			t.Fatal(err)
		}
		opt.NoFallback = true
		solver, err := NewSolver(scn.Inst, 2, part, opt)
		if err != nil {
			t.Fatal(err)
		}
		return mpcSeq(t, solver, scn.Inst, scn.Demand, scn.Prices, 3)
	}
	fast, plain := run(Options{RankK: true}), run(Options{})
	fastResolves := 0
	for k := range fast {
		if !fast[k].Converged {
			t.Fatalf("period %d: rank-k run did not converge", k)
		}
		gap := math.Abs(fast[k].Objective-plain[k].Objective) / math.Abs(plain[k].Objective)
		if gap > 5e-3 {
			t.Fatalf("period %d: rank-k objective gap %.2e beyond the coordination tolerance", k, gap)
		}
		fastResolves += fast[k].FastResolves
	}
	if fastResolves == 0 {
		t.Fatal("rank-k fast path never fired on a multi-round scenario")
	}
	if plain[0].FastResolves != 0 {
		t.Fatalf("fast path fired %d times without RankK", plain[0].FastResolves)
	}
}

// TestPeriodCarryQuiescent pins cross-period delta reuse: under a
// constant forecast the MPC trajectory settles, and once the per-period
// input drift is inside PeriodCarryTol whole periods complete with zero
// QP solves — every shard holds its allocation.
func TestPeriodCarryQuiescent(t *testing.T) {
	scn := newIncrementalScenario(t)
	part, err := NewPartition(scn.Inst, 40)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := NewSolver(scn.Inst, 2, part, Options{
		NoFallback: true, PeriodCarryTol: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sols := mpcSeq(t, solver, scn.Inst, scn.Demand, scn.Prices, 60)
	carried := 0
	for _, sol := range sols {
		if sol.HeldShards == len(part.Shards) {
			carried++
			if sol.Rounds != 0 || !sol.Converged {
				t.Fatalf("fully carried period reports rounds=%d converged=%t", sol.Rounds, sol.Converged)
			}
			for l := range sol.Applied {
				for v := range sol.Applied[l] {
					if sol.Applied[l][v] != 0 {
						t.Fatalf("carried period applied a nonzero control at [%d][%d]", l, v)
					}
				}
			}
		}
	}
	if carried == 0 {
		t.Fatal("no period was fully carried in 60 quiet steps")
	}
	// The held state must still satisfy demand and capacity.
	last := sols[len(sols)-1]
	slack, err := scn.Inst.DemandSlack(last.State, scn.Demand[0])
	if err != nil {
		t.Fatal(err)
	}
	for v, sl := range slack {
		if sl < -1e-6 {
			t.Fatalf("location %d demand violated by %g after carry", v, -sl)
		}
	}
}

// TestDecideBypassHeuristic pins the cost model on the two BENCH_4
// calibration points that motivated it: the two-shard split of the
// n120 scenario ran 0.55× slower than monolithic (must bypass), while
// the four-shard split of the same instance ran 2.9× faster (must
// decompose).
func TestDecideBypassHeuristic(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{Locations: 120, DCSites: 12, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		shardSize int
		bypass    bool
	}{
		{60, true},  // 2 shards, densely shared: coordination loses
		{30, false}, // 4 shards: cubic win dominates the rounds
	} {
		part, err := NewPartition(scn.Inst, tc.shardSize)
		if err != nil {
			t.Fatal(err)
		}
		dec := DecideBypass(scn.Inst, part, Options{})
		if dec.Bypass != tc.bypass {
			t.Fatalf("shard size %d (%d shards): bypass=%t ratio=%.3f rounds=%d, want bypass=%t",
				tc.shardSize, len(part.Shards), dec.Bypass, dec.Ratio, dec.Rounds, tc.bypass)
		}
		ctrl, err := NewController(scn.Inst, 2, Options{MaxShardSize: tc.shardSize})
		if err != nil {
			t.Fatal(err)
		}
		if ctrl.Bypassed() != tc.bypass {
			t.Fatalf("shard size %d: controller bypassed=%t, want %t", tc.shardSize, ctrl.Bypassed(), tc.bypass)
		}
		if _, _, err := ctrl.Step(scn.Demand, scn.Prices); err != nil {
			t.Fatalf("shard size %d: step: %v", tc.shardSize, err)
		}
	}
	// A negative ratio threshold disables the model outright.
	part, err := NewPartition(scn.Inst, 60)
	if err != nil {
		t.Fatal(err)
	}
	if dec := DecideBypass(scn.Inst, part, Options{BypassRatio: -1}); dec.Bypass {
		t.Fatal("BypassRatio < 0 must never bypass")
	}
}

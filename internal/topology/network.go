package topology

import (
	"fmt"
	"math"
)

// Site is a data center or access network pinned to a city and, when the
// network came from a generated graph, to a graph node.
type Site struct {
	Name string
	City City
	Node int // graph node index; -1 when geo-derived
}

// Network is the bipartite placement graph the controller consumes: L data
// centers, V access networks, and an L×V one-way latency matrix (seconds).
// It corresponds to G = (L ∪ V, E) with weights d_lv in the paper (§IV).
type Network struct {
	DataCenters []Site
	Access      []Site
	latency     [][]float64 // [l][v] seconds
}

// NumDataCenters returns L.
func (n *Network) NumDataCenters() int { return len(n.DataCenters) }

// NumAccess returns V.
func (n *Network) NumAccess() int { return len(n.Access) }

// Latency returns d_lv between data center l and access network v.
func (n *Network) Latency(l, v int) (float64, error) {
	if l < 0 || l >= len(n.DataCenters) || v < 0 || v >= len(n.Access) {
		return 0, fmt.Errorf("latency (%d,%d) of (%d,%d): %w",
			l, v, len(n.DataCenters), len(n.Access), ErrNodeRange)
	}
	return n.latency[l][v], nil
}

// LatencyMatrix returns a deep copy of the L×V latency matrix.
func (n *Network) LatencyMatrix() [][]float64 {
	out := make([][]float64, len(n.latency))
	for i, row := range n.latency {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// BuildFromTransitStub places data centers and access networks on distinct
// stub gateways of a generated transit-stub topology, in order, and fills
// the latency matrix with shortest-path delays. It needs at least
// len(dcCities)+len(accessCities) stub domains.
func BuildFromTransitStub(ts *TransitStub, dcCities, accessCities []City) (*Network, error) {
	need := len(dcCities) + len(accessCities)
	if need == 0 {
		return nil, fmt.Errorf("no sites requested: %w", ErrBadConfig)
	}
	if len(ts.StubGateways) < need {
		return nil, fmt.Errorf("%d stub domains < %d sites: %w",
			len(ts.StubGateways), need, ErrBadConfig)
	}
	net := &Network{}
	for i, c := range dcCities {
		net.DataCenters = append(net.DataCenters, Site{
			Name: c.Name, City: c, Node: ts.StubGateways[i],
		})
	}
	for i, c := range accessCities {
		net.Access = append(net.Access, Site{
			Name: c.Name, City: c, Node: ts.StubGateways[len(dcCities)+i],
		})
	}
	net.latency = make([][]float64, len(net.DataCenters))
	for l, dc := range net.DataCenters {
		dist, err := ts.Graph.ShortestFrom(dc.Node)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(net.Access))
		for v, an := range net.Access {
			d := dist[an.Node]
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("dc %q cannot reach access %q: %w",
					dc.Name, an.Name, ErrBadConfig)
			}
			row[v] = d
		}
		net.latency[l] = row
	}
	return net, nil
}

// BuildGeo derives latencies from great-circle propagation delay between
// cities plus a fixed last-mile overhead per endpoint. It is the quick way
// to build a realistic network without generating a router graph.
func BuildGeo(dcCities, accessCities []City, lastMileDelay float64) (*Network, error) {
	if len(dcCities) == 0 || len(accessCities) == 0 {
		return nil, fmt.Errorf("need at least one DC and one access network: %w", ErrBadConfig)
	}
	if lastMileDelay < 0 {
		return nil, fmt.Errorf("last-mile delay %g: %w", lastMileDelay, ErrBadConfig)
	}
	net := &Network{}
	for _, c := range dcCities {
		net.DataCenters = append(net.DataCenters, Site{Name: c.Name, City: c, Node: -1})
	}
	for _, c := range accessCities {
		net.Access = append(net.Access, Site{Name: c.Name, City: c, Node: -1})
	}
	net.latency = make([][]float64, len(dcCities))
	for l, dc := range dcCities {
		row := make([]float64, len(accessCities))
		for v, an := range accessCities {
			row[v] = PropagationDelaySec(dc, an) + 2*lastMileDelay
		}
		net.latency[l] = row
	}
	return net, nil
}

// NearestDataCenter returns the index of the lowest-latency DC for access
// network v.
func (n *Network) NearestDataCenter(v int) (int, error) {
	if v < 0 || v >= len(n.Access) {
		return 0, fmt.Errorf("access %d of %d: %w", v, len(n.Access), ErrNodeRange)
	}
	best, bestLat := 0, math.Inf(1)
	for l := range n.DataCenters {
		if n.latency[l][v] < bestLat {
			best, bestLat = l, n.latency[l][v]
		}
	}
	return best, nil
}

package topology

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Sentinel errors.
var (
	// ErrBadConfig flags invalid generator parameters.
	ErrBadConfig = errors.New("topology: invalid configuration")
	// ErrNodeRange flags an out-of-range node index.
	ErrNodeRange = errors.New("topology: node index out of range")
)

// NodeKind distinguishes the tiers of a transit-stub topology.
type NodeKind int

// Node tiers. Transit nodes form the backbone; stub nodes hang off it.
const (
	TransitNode NodeKind = iota + 1
	StubNode
)

// Graph is an undirected weighted multigraph with adjacency lists, holding
// the generated transit-stub network. Edge weights are latencies (seconds).
type Graph struct {
	kinds []NodeKind
	adj   [][]edge
}

type edge struct {
	to int
	w  float64
}

// NewGraph returns an empty graph with n nodes of the given kinds.
func NewGraph(kinds []NodeKind) *Graph {
	k := make([]NodeKind, len(kinds))
	copy(k, kinds)
	return &Graph{kinds: k, adj: make([][]edge, len(kinds))}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// Kind returns the tier of node i.
func (g *Graph) Kind(i int) (NodeKind, error) {
	if i < 0 || i >= len(g.kinds) {
		return 0, fmt.Errorf("node %d of %d: %w", i, len(g.kinds), ErrNodeRange)
	}
	return g.kinds[i], nil
}

// AddEdge inserts an undirected edge with the given latency.
func (g *Graph) AddEdge(u, v int, latency float64) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("edge (%d,%d) of %d nodes: %w", u, v, len(g.adj), ErrNodeRange)
	}
	if latency < 0 || math.IsNaN(latency) {
		return fmt.Errorf("edge (%d,%d) latency %g: %w", u, v, latency, ErrBadConfig)
	}
	g.adj[u] = append(g.adj[u], edge{to: v, w: latency})
	g.adj[v] = append(g.adj[v], edge{to: u, w: latency})
	return nil
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) (int, error) {
	if i < 0 || i >= len(g.adj) {
		return 0, fmt.Errorf("node %d of %d: %w", i, len(g.adj), ErrNodeRange)
	}
	return len(g.adj[i]), nil
}

// ShortestFrom runs Dijkstra from src, returning the latency to every node
// (+Inf for unreachable nodes).
func (g *Graph) ShortestFrom(src int) ([]float64, error) {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("source %d of %d: %w", src, n, ErrNodeRange)
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.node] {
			continue // stale entry
		}
		for _, e := range g.adj[item.node] {
			if nd := item.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{node: e.to, d: nd})
			}
		}
	}
	return dist, nil
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	dist, err := g.ShortestFrom(0)
	if err != nil {
		return false
	}
	for _, d := range dist {
		if math.IsInf(d, 1) {
			return false
		}
	}
	return true
}

type distItem struct {
	node int
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

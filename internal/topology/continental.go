package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Continental-scale synthetic topologies. The built-in city database tops
// out around 30 metros; scaling experiments (ROADMAP item 1) need
// thousands of access locations and hundreds of DC sites. The generator
// scatters DC sites on a jittered grid over a continental bounding box
// and places each access location inside the latency reach of an anchor
// DC, so every location is guaranteed at least one SLA-feasible data
// center by construction rather than discovered infeasible downstream at
// core.NewInstance.

// Continental-US bounding box the generator scatters sites over.
const (
	contLatMin = 25.5
	contLatMax = 48.5
	contLonMin = -123.5
	contLonMax = -68.0
)

// reachMargin shrinks the computed latency reach when placing locations,
// so grid jitter and haversine rounding can never push a location's
// anchor DC past the delay budget.
const reachMargin = 0.9

// cellReachRatio targets DC grid spacing as a fraction of the latency
// reach. On the full continental box a small DC fleet sits much further
// apart than any realistic SLA reach, so every region is an isolated
// island: no location can see two DCs and nothing couples the regions.
// The generator instead shrinks the box around its center until the grid
// cell side is about this fraction of the reach, which keeps neighboring
// coverage disks overlapping — the regime where locations average ~2
// feasible DCs and adjacent regions share capacity — at every fleet size.
// Fleets dense enough to beat this spacing on the full box keep it.
const cellReachRatio = 0.8

// ContinentalConfig parameterizes the continental generator.
type ContinentalConfig struct {
	// Locations is the number of access networks V (≥ 1).
	Locations int
	// DCSites is the number of data-center sites L (≥ 1).
	DCSites int
	// Seed drives all randomness; equal seeds give byte-identical
	// networks regardless of how many workers later consume them.
	Seed int64
	// LastMile is the per-endpoint access delay in seconds added to every
	// path (defaults to 2 ms when zero, matching the dsppsim CLI).
	LastMile float64
	// MaxReachDelay is the one-way latency budget (seconds, last-mile
	// included) within which every location must see at least one DC.
	// Callers derive it from their SLA: for an M/M/1 target the
	// coefficient stays finite only while NetworkDelay < MaxDelay − φ/μ,
	// so pass that bound (minus any cushion) here.
	MaxReachDelay float64
	// SpreadKm optionally caps how far a location may sit from its
	// anchor DC (0 means the full latency reach). Smaller spreads give
	// more isolated regions and cheaper decompositions.
	SpreadKm float64
}

// Validate checks the configuration.
func (c ContinentalConfig) Validate() error {
	if c.Locations < 1 {
		return fmt.Errorf("locations %d: %w", c.Locations, ErrBadConfig)
	}
	if c.DCSites < 1 {
		return fmt.Errorf("dc sites %d: %w", c.DCSites, ErrBadConfig)
	}
	if c.LastMile < 0 {
		return fmt.Errorf("last-mile delay %g: %w", c.LastMile, ErrBadConfig)
	}
	if c.SpreadKm < 0 {
		return fmt.Errorf("spread %g km: %w", c.SpreadKm, ErrBadConfig)
	}
	if km := c.reachKm(); km <= 0 {
		return fmt.Errorf("reach delay %gs leaves no budget beyond 2×%gs last-mile: %w",
			c.MaxReachDelay, c.lastMile(), ErrBadConfig)
	}
	return nil
}

func (c ContinentalConfig) lastMile() float64 {
	if c.LastMile == 0 {
		return 0.002
	}
	return c.LastMile
}

// reachKm converts the delay budget left after the two last-mile hops
// into great-circle kilometers under the fiber model of
// PropagationDelaySec (200000 km/s, 1.6× path stretch).
func (c ContinentalConfig) reachKm() float64 {
	const fiberSpeedKmPerSec = 200000.0
	const pathStretch = 1.6
	return (c.MaxReachDelay - 2*c.lastMile()) * fiberSpeedKmPerSec / pathStretch
}

// ContinentalNetwork is a generated continental topology: the bipartite
// placement network plus the anchor assignment used to place locations.
type ContinentalNetwork struct {
	*Network
	// Anchor[v] is the DC site each location was placed next to; the
	// generator guarantees Latency(Anchor[v], v) ≤ MaxReachDelay.
	Anchor []int
}

// GenerateContinental builds a deterministic continental-scale network.
// DC sites land on a jittered grid covering the continental bounding box;
// each access location picks an anchor DC (round-robin, so demand spreads
// evenly across regions) and lands at a uniform-in-disk offset bounded by
// both SpreadKm and the latency reach. Every location therefore has its
// anchor within MaxReachDelay by construction — the generator re-checks
// the final latency matrix and fails loudly if the invariant ever broke.
func GenerateContinental(cfg ContinentalConfig) (*ContinentalNetwork, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Bounding box, scaled around its center so the DC grid spacing
	// tracks the latency reach (see cellReachRatio).
	latSpan := contLatMax - contLatMin
	lonSpan := contLonMax - contLonMin
	latMin, lonMin := contLatMin, contLonMin
	midLat := (contLatMin + contLatMax) / 2 * math.Pi / 180
	fullArea := latSpan * 111.0 * lonSpan * 111.0 * math.Cos(midLat)
	cell := cellReachRatio * cfg.reachKm()
	wantArea := float64(cfg.DCSites) * cell * cell
	if scale := math.Sqrt(wantArea / fullArea); scale < 1 {
		latMin += latSpan * (1 - scale) / 2
		lonMin += lonSpan * (1 - scale) / 2
		latSpan *= scale
		lonSpan *= scale
	}

	// DC grid: rows×cols ≈ DCSites with cells shaped like the bounding
	// box, one site per cell plus 20% jitter.
	aspect := lonSpan / latSpan
	rows := int(math.Max(1, math.Round(math.Sqrt(float64(cfg.DCSites)/aspect))))
	cols := (cfg.DCSites + rows - 1) / rows
	dcs := make([]City, cfg.DCSites)
	for i := range dcs {
		r, c := i/cols, i%cols
		cellLat := latSpan / float64(rows)
		cellLon := lonSpan / float64(cols)
		dcs[i] = City{
			Name:       fmt.Sprintf("dc-%03d", i),
			Lat:        latMin + (float64(r)+0.5)*cellLat + (rng.Float64()-0.5)*0.4*cellLat,
			Lon:        lonMin + (float64(c)+0.5)*cellLon + (rng.Float64()-0.5)*0.4*cellLon,
			Population: 0,
		}
	}

	radiusKm := cfg.reachKm() * reachMargin
	if cfg.SpreadKm > 0 && cfg.SpreadKm < radiusKm {
		radiusKm = cfg.SpreadKm
	}
	locs := make([]City, cfg.Locations)
	anchor := make([]int, cfg.Locations)
	for v := range locs {
		a := v % cfg.DCSites // round-robin anchors: every region gets load
		anchor[v] = a
		// Uniform-in-disk offset around the anchor, converted to degrees
		// at the anchor's latitude (guarding the cos against the poles,
		// which the bounding box keeps us far from anyway).
		d := radiusKm * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		dLat := d * math.Sin(theta) / 111.0
		cosLat := math.Cos(dcs[a].Lat * math.Pi / 180)
		if cosLat < 0.1 {
			cosLat = 0.1
		}
		dLon := d * math.Cos(theta) / (111.0 * cosLat)
		locs[v] = City{
			Name:       fmt.Sprintf("loc-%04d", v),
			Lat:        dcs[a].Lat + dLat,
			Lon:        dcs[a].Lon + dLon,
			Population: 100000 + rng.Intn(1900000),
		}
	}

	net, err := BuildGeo(dcs, locs, cfg.lastMile())
	if err != nil {
		return nil, err
	}
	if bad := net.Uncovered(cfg.MaxReachDelay); len(bad) > 0 {
		return nil, fmt.Errorf("%d locations (first: %d) have no DC within %gs: %w",
			len(bad), bad[0], cfg.MaxReachDelay, ErrBadConfig)
	}
	return &ContinentalNetwork{Network: net, Anchor: anchor}, nil
}

// Uncovered returns the access-network indices with no data center within
// maxDelay one-way latency — the locations core.NewInstance would reject
// as having an empty feasible set under an SLA with that budget.
func (n *Network) Uncovered(maxDelay float64) []int {
	var bad []int
	for v := range n.Access {
		covered := false
		for l := range n.DataCenters {
			if n.latency[l][v] <= maxDelay {
				covered = true
				break
			}
		}
		if !covered {
			bad = append(bad, v)
		}
	}
	return bad
}

// Package topology models the geographically distributed cloud of the
// paper: a bipartite placement graph between data centers and client
// access networks, with network latencies derived from a transit-stub
// topology in the style of GT-ITM (the paper augments Rocketfuel tier-1
// maps the same way) using the paper's per-tier link delays: 20 ms
// intra-transit, 5 ms transit–stub, 2 ms intra-stub.
package topology

import "math"

// City is a metro area that can host a data center or originate demand.
type City struct {
	Name       string
	State      string
	Lat, Lon   float64 // degrees
	Population int     // metro population, used to weight demand
}

// USCities returns the built-in metro database: the 4 paper data-center
// sites plus the major demand metros ("24 access networks in major cities
// across the U.S.", §VII). Returned as a fresh copy; callers may modify.
func USCities() []City {
	src := usCities
	out := make([]City, len(src))
	copy(out, src)
	return out
}

// CityByName returns the built-in city with the given name and true, or a
// zero City and false.
func CityByName(name string) (City, bool) {
	for _, c := range usCities {
		if c.Name == name {
			return c, true
		}
	}
	return City{}, false
}

// usCities mixes the paper's DC sites (San Jose, Houston, Atlanta,
// Chicago, Dallas, Mountain View) with 24 high-population metros.
var usCities = []City{
	{"San Jose", "CA", 37.34, -121.89, 1030000},
	{"Mountain View", "CA", 37.39, -122.08, 82000},
	{"Houston", "TX", 29.76, -95.37, 2300000},
	{"Dallas", "TX", 32.78, -96.80, 1340000},
	{"Atlanta", "GA", 33.75, -84.39, 500000},
	{"Chicago", "IL", 41.88, -87.63, 2700000},
	{"New York", "NY", 40.71, -74.01, 8400000},
	{"Los Angeles", "CA", 34.05, -118.24, 3900000},
	{"Phoenix", "AZ", 33.45, -112.07, 1680000},
	{"Philadelphia", "PA", 39.95, -75.17, 1580000},
	{"San Antonio", "TX", 29.42, -98.49, 1550000},
	{"San Diego", "CA", 32.72, -117.16, 1420000},
	{"Austin", "TX", 30.27, -97.74, 1000000},
	{"Jacksonville", "FL", 30.33, -81.66, 950000},
	{"Columbus", "OH", 39.96, -83.00, 900000},
	{"Charlotte", "NC", 35.23, -80.84, 880000},
	{"Indianapolis", "IN", 39.77, -86.16, 880000},
	{"San Francisco", "CA", 37.77, -122.42, 870000},
	{"Seattle", "WA", 47.61, -122.33, 740000},
	{"Denver", "CO", 39.74, -104.99, 720000},
	{"Washington", "DC", 38.91, -77.04, 700000},
	{"Boston", "MA", 42.36, -71.06, 690000},
	{"Nashville", "TN", 36.16, -86.78, 690000},
	{"Detroit", "MI", 42.33, -83.05, 630000},
	{"Portland", "OR", 45.52, -122.68, 650000},
	{"Memphis", "TN", 35.15, -90.05, 630000},
	{"Miami", "FL", 25.76, -80.19, 470000},
	{"Minneapolis", "MN", 44.98, -93.27, 430000},
	{"New Orleans", "LA", 29.95, -90.07, 390000},
	{"Salt Lake City", "UT", 40.76, -111.89, 200000},
}

const earthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance between two cities in km.
func HaversineKm(a, b City) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// PropagationDelaySec estimates one-way propagation delay between two
// cities: distance over c·2/3 (speed of light in fiber), times a path
// stretch factor of 1.6 to account for non-geodesic routing.
func PropagationDelaySec(a, b City) float64 {
	const fiberSpeedKmPerSec = 200000.0 // ~2/3 c
	const pathStretch = 1.6
	return HaversineKm(a, b) * pathStretch / fiberSpeedKmPerSec
}

package topology

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUSCitiesDatabase(t *testing.T) {
	cities := USCities()
	if len(cities) < 24 {
		t.Fatalf("only %d cities; paper needs 24 access networks", len(cities))
	}
	seen := make(map[string]bool, len(cities))
	for _, c := range cities {
		if seen[c.Name] {
			t.Errorf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
		if c.Population <= 0 {
			t.Errorf("%s has population %d", c.Name, c.Population)
		}
		if c.Lat < 24 || c.Lat > 50 || c.Lon > -66 || c.Lon < -125 {
			t.Errorf("%s coordinates (%g, %g) outside continental US", c.Name, c.Lat, c.Lon)
		}
	}
	// The paper's DC sites must exist.
	for _, name := range []string{"San Jose", "Houston", "Atlanta", "Chicago", "Dallas", "Mountain View"} {
		if _, ok := CityByName(name); !ok {
			t.Errorf("missing paper DC city %q", name)
		}
	}
	if _, ok := CityByName("Nowhere"); ok {
		t.Error("CityByName found a nonexistent city")
	}
}

func TestUSCitiesReturnsCopy(t *testing.T) {
	a := USCities()
	a[0].Name = "MUTATED"
	b := USCities()
	if b[0].Name == "MUTATED" {
		t.Error("USCities exposes internal storage")
	}
}

func TestHaversine(t *testing.T) {
	sj, _ := CityByName("San Jose")
	ny, _ := CityByName("New York")
	d := HaversineKm(sj, ny)
	// Great-circle SJC-NYC is roughly 4100 km.
	if d < 3800 || d > 4400 {
		t.Errorf("SJ-NY distance = %g km, want ~4100", d)
	}
	if HaversineKm(sj, sj) != 0 {
		t.Errorf("self distance = %g", HaversineKm(sj, sj))
	}
	if math.Abs(HaversineKm(sj, ny)-HaversineKm(ny, sj)) > 1e-9 {
		t.Error("haversine not symmetric")
	}
}

func TestPropagationDelay(t *testing.T) {
	sj, _ := CityByName("San Jose")
	ny, _ := CityByName("New York")
	d := PropagationDelaySec(sj, ny)
	// Coast to coast one-way should be tens of ms.
	if d < 0.02 || d > 0.06 {
		t.Errorf("SJ-NY delay = %g s, want 20-60 ms", d)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph([]NodeKind{TransitNode, StubNode, StubNode})
	if err := g.AddEdge(0, 1, 0.005); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 0.002); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	k, err := g.Kind(0)
	if err != nil || k != TransitNode {
		t.Errorf("Kind(0) = %v, %v", k, err)
	}
	deg, err := g.Degree(1)
	if err != nil || deg != 2 {
		t.Errorf("Degree(1) = %d, %v", deg, err)
	}
	dist, err := g.ShortestFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[2]-0.007) > 1e-12 {
		t.Errorf("dist[2] = %g, want 0.007", dist[2])
	}
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestGraphErrors(t *testing.T) {
	g := NewGraph([]NodeKind{TransitNode})
	if err := g.AddEdge(0, 5, 1); !errors.Is(err, ErrNodeRange) {
		t.Errorf("out-of-range edge err = %v", err)
	}
	if err := g.AddEdge(0, 0, -1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative latency err = %v", err)
	}
	if _, err := g.Kind(9); !errors.Is(err, ErrNodeRange) {
		t.Errorf("Kind range err = %v", err)
	}
	if _, err := g.Degree(-1); !errors.Is(err, ErrNodeRange) {
		t.Errorf("Degree range err = %v", err)
	}
	if _, err := g.ShortestFrom(7); !errors.Is(err, ErrNodeRange) {
		t.Errorf("ShortestFrom range err = %v", err)
	}
}

func TestGraphDisconnected(t *testing.T) {
	g := NewGraph([]NodeKind{StubNode, StubNode})
	if g.Connected() {
		t.Error("two isolated nodes reported connected")
	}
	dist, err := g.ShortestFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[1], 1) {
		t.Errorf("unreachable dist = %g, want +Inf", dist[1])
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GeneratorConfig{
		{TransitNodes: 0, StubsPerTransit: 1, NodesPerStub: 1},
		{TransitNodes: 1, StubsPerTransit: 0, NodesPerStub: 1},
		{TransitNodes: 1, StubsPerTransit: 1, NodesPerStub: 0},
		{TransitNodes: 1, StubsPerTransit: 1, NodesPerStub: 1, ExtraTransitEdges: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d err = %v", i, err)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	cfg := GeneratorConfig{
		TransitNodes:    4,
		StubsPerTransit: 3,
		NodesPerStub:    5,
		Seed:            7,
	}
	ts, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := 4 + 4*3*5
	if ts.Graph.NumNodes() != wantNodes {
		t.Errorf("nodes = %d, want %d", ts.Graph.NumNodes(), wantNodes)
	}
	if len(ts.StubGateways) != 12 {
		t.Errorf("gateways = %d, want 12", len(ts.StubGateways))
	}
	if !ts.Graph.Connected() {
		t.Error("generated topology disconnected")
	}
	for i, id := range ts.TransitIDs {
		k, err := ts.Graph.Kind(id)
		if err != nil || k != TransitNode {
			t.Errorf("transit %d kind = %v, %v", i, k, err)
		}
	}
	for s, members := range ts.StubMembers {
		if len(members) != 5 {
			t.Errorf("stub %d has %d members", s, len(members))
		}
		for _, m := range members {
			k, err := ts.Graph.Kind(m)
			if err != nil || k != StubNode {
				t.Errorf("stub member %d kind = %v, %v", m, k, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GeneratorConfig{TransitNodes: 3, StubsPerTransit: 2, NodesPerStub: 4, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Error("same seed produced different edge counts")
	}
	da, _ := a.Graph.ShortestFrom(0)
	db, _ := b.Graph.ShortestFrom(0)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same seed, different distances at node %d", i)
		}
	}
}

func TestGenerateSingleTransit(t *testing.T) {
	ts, err := Generate(GeneratorConfig{TransitNodes: 1, StubsPerTransit: 2, NodesPerStub: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Graph.Connected() {
		t.Error("single-transit topology disconnected")
	}
}

func TestBuildFromTransitStub(t *testing.T) {
	ts, err := Generate(GeneratorConfig{TransitNodes: 4, StubsPerTransit: 3, NodesPerStub: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cities := USCities()
	net, err := BuildFromTransitStub(ts, cities[:4], cities[4:10])
	if err != nil {
		t.Fatal(err)
	}
	if net.NumDataCenters() != 4 || net.NumAccess() != 6 {
		t.Fatalf("L=%d V=%d", net.NumDataCenters(), net.NumAccess())
	}
	for l := 0; l < 4; l++ {
		for v := 0; v < 6; v++ {
			d, err := net.Latency(l, v)
			if err != nil {
				t.Fatal(err)
			}
			// Gateway-to-gateway must traverse at least up+down links.
			if d < 2*TransitStubDelay-1e-12 {
				t.Errorf("latency(%d,%d) = %g below physical floor", l, v, d)
			}
			if d > 1.0 {
				t.Errorf("latency(%d,%d) = %g unreasonably high", l, v, d)
			}
		}
	}
	// Latency must reflect transit hops: sites on the same transit router
	// are closer than sites across the ring (statistically; check floor).
	if _, err := net.Latency(99, 0); !errors.Is(err, ErrNodeRange) {
		t.Errorf("latency range err = %v", err)
	}
}

func TestBuildFromTransitStubErrors(t *testing.T) {
	ts, err := Generate(GeneratorConfig{TransitNodes: 1, StubsPerTransit: 2, NodesPerStub: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cities := USCities()
	if _, err := BuildFromTransitStub(ts, cities[:2], cities[2:4]); !errors.Is(err, ErrBadConfig) {
		t.Errorf("too few stubs err = %v", err)
	}
	if _, err := BuildFromTransitStub(ts, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no sites err = %v", err)
	}
}

func TestBuildGeo(t *testing.T) {
	cities := USCities()
	net, err := BuildGeo(cities[:3], cities[3:8], 0.002)
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := CityByName("San Jose")
	ny, _ := CityByName("New York")
	_ = sj
	_ = ny
	lat := net.LatencyMatrix()
	if len(lat) != 3 || len(lat[0]) != 5 {
		t.Fatalf("matrix shape %dx%d", len(lat), len(lat[0]))
	}
	// Mutating the returned matrix must not affect the network.
	lat[0][0] = 999
	d, err := net.Latency(0, 0)
	if err != nil || d == 999 {
		t.Errorf("LatencyMatrix exposes internal storage (d=%g err=%v)", d, err)
	}
	if _, err := BuildGeo(nil, cities[:1], 0.001); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no DC err = %v", err)
	}
	if _, err := BuildGeo(cities[:1], cities[:1], -1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative last mile err = %v", err)
	}
}

func TestNearestDataCenter(t *testing.T) {
	sj, _ := CityByName("San Jose")
	atl, _ := CityByName("Atlanta")
	la, _ := CityByName("Los Angeles")
	mia, _ := CityByName("Miami")
	net, err := BuildGeo([]City{sj, atl}, []City{la, mia}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.NearestDataCenter(0) // LA should map to San Jose
	if err != nil || l != 0 {
		t.Errorf("LA nearest = %d (%v), want 0 (San Jose)", l, err)
	}
	l, err = net.NearestDataCenter(1) // Miami should map to Atlanta
	if err != nil || l != 1 {
		t.Errorf("Miami nearest = %d (%v), want 1 (Atlanta)", l, err)
	}
	if _, err := net.NearestDataCenter(5); !errors.Is(err, ErrNodeRange) {
		t.Errorf("range err = %v", err)
	}
}

// Property: Dijkstra distances satisfy the triangle inequality through any
// intermediate node, on random generated topologies.
func TestQuickDijkstraTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := GeneratorConfig{
			TransitNodes:    1 + rng.Intn(4),
			StubsPerTransit: 1 + rng.Intn(3),
			NodesPerStub:    1 + rng.Intn(4),
			Seed:            seed,
		}
		ts, err := Generate(cfg)
		if err != nil {
			return false
		}
		g := ts.Graph
		n := g.NumNodes()
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		da, err := g.ShortestFrom(a)
		if err != nil {
			return false
		}
		db, err := g.ShortestFrom(b)
		if err != nil {
			return false
		}
		return da[c] <= da[b]+db[c]+1e-12
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: shortest-path distance is symmetric on undirected graphs.
func TestQuickDijkstraSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts, err := Generate(GeneratorConfig{
			TransitNodes:    1 + rng.Intn(3),
			StubsPerTransit: 1 + rng.Intn(3),
			NodesPerStub:    1 + rng.Intn(3),
			Seed:            seed + 1,
		})
		if err != nil {
			return false
		}
		g := ts.Graph
		n := g.NumNodes()
		u, v := rng.Intn(n), rng.Intn(n)
		du, err := g.ShortestFrom(u)
		if err != nil {
			return false
		}
		dv, err := g.ShortestFrom(v)
		if err != nil {
			return false
		}
		return math.Abs(du[v]-dv[u]) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(57))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

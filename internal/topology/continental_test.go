package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContinentalDeterministic(t *testing.T) {
	cfg := ContinentalConfig{
		Locations:     1200,
		DCSites:       120,
		Seed:          7,
		MaxReachDelay: 0.018,
	}
	a, err := GenerateContinental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateContinental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDataCenters() != 120 || a.NumAccess() != 1200 {
		t.Fatalf("got %d DCs, %d locations", a.NumDataCenters(), a.NumAccess())
	}
	for v, site := range a.Access {
		if site != b.Access[v] {
			t.Fatalf("location %d differs across equal seeds: %+v vs %+v", v, site, b.Access[v])
		}
		if a.Anchor[v] != b.Anchor[v] {
			t.Fatalf("anchor %d differs: %d vs %d", v, a.Anchor[v], b.Anchor[v])
		}
	}
	for l, site := range a.DataCenters {
		if site != b.DataCenters[l] {
			t.Fatalf("dc %d differs across equal seeds", l)
		}
	}
	la, lb := a.LatencyMatrix(), b.LatencyMatrix()
	for l := range la {
		for v := range la[l] {
			if la[l][v] != lb[l][v] {
				t.Fatalf("latency[%d][%d] differs: %g vs %g", l, v, la[l][v], lb[l][v])
			}
		}
	}
	c, err := GenerateContinental(ContinentalConfig{
		Locations: 1200, DCSites: 120, Seed: 8, MaxReachDelay: 0.018,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access[0] == a.Access[0] && c.Access[1] == a.Access[1] {
		t.Fatal("different seeds produced identical placements")
	}
}

// Property: every generated location has its anchor DC within the reach
// budget, so an SLA whose feasibility radius is MaxReachDelay can never
// see an empty feasible set.
func TestQuickContinentalCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := ContinentalConfig{
			Locations:     1 + rng.Intn(300),
			DCSites:       1 + rng.Intn(40),
			Seed:          seed,
			MaxReachDelay: 0.008 + rng.Float64()*0.02,
			SpreadKm:      float64(rng.Intn(2)) * (50 + rng.Float64()*500),
		}
		net, err := GenerateContinental(cfg)
		if err != nil {
			return false
		}
		if len(net.Uncovered(cfg.MaxReachDelay)) != 0 {
			return false
		}
		for v := range net.Access {
			d, err := net.Latency(net.Anchor[v], v)
			if err != nil || d > cfg.MaxReachDelay {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestContinentalRejectsBadConfig(t *testing.T) {
	cases := []ContinentalConfig{
		{Locations: 0, DCSites: 4, MaxReachDelay: 0.02},
		{Locations: 10, DCSites: 0, MaxReachDelay: 0.02},
		{Locations: 10, DCSites: 4, MaxReachDelay: 0.003}, // < 2×2ms last mile
		{Locations: 10, DCSites: 4, MaxReachDelay: 0.02, SpreadKm: -1},
		{Locations: 10, DCSites: 4, MaxReachDelay: 0.02, LastMile: -0.001},
	}
	for i, c := range cases {
		if _, err := GenerateContinental(c); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

package topology

import (
	"fmt"
	"math/rand"
)

// Paper §VII link latencies (GT-ITM-style transit-stub augmentation).
const (
	// IntraTransitDelay is the latency of links between transit routers.
	IntraTransitDelay = 0.020 // 20 ms
	// TransitStubDelay is the latency of links from a transit router down
	// to a stub-domain gateway.
	TransitStubDelay = 0.005 // 5 ms
	// IntraStubDelay is the latency of links inside a stub domain.
	IntraStubDelay = 0.002 // 2 ms
)

// GeneratorConfig parameterizes the transit-stub topology generator.
type GeneratorConfig struct {
	// TransitNodes is the number of backbone routers (≥ 1).
	TransitNodes int
	// StubsPerTransit is how many stub domains attach to each transit
	// router (≥ 1).
	StubsPerTransit int
	// NodesPerStub is the number of routers inside each stub domain (≥ 1).
	NodesPerStub int
	// ExtraTransitEdges adds this many random backbone shortcut edges on
	// top of the backbone ring (default 0).
	ExtraTransitEdges int
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
}

// Validate checks the configuration.
func (c GeneratorConfig) Validate() error {
	if c.TransitNodes < 1 {
		return fmt.Errorf("transit nodes %d: %w", c.TransitNodes, ErrBadConfig)
	}
	if c.StubsPerTransit < 1 {
		return fmt.Errorf("stubs per transit %d: %w", c.StubsPerTransit, ErrBadConfig)
	}
	if c.NodesPerStub < 1 {
		return fmt.Errorf("nodes per stub %d: %w", c.NodesPerStub, ErrBadConfig)
	}
	if c.ExtraTransitEdges < 0 {
		return fmt.Errorf("extra transit edges %d: %w", c.ExtraTransitEdges, ErrBadConfig)
	}
	return nil
}

// TransitStub holds a generated topology along with the node roles needed
// to attach data centers and access networks.
type TransitStub struct {
	Graph *Graph
	// TransitIDs lists backbone router node indices.
	TransitIDs []int
	// StubGateways lists, per stub domain, the node adjacent to a transit
	// router (where a data center or access network attaches naturally).
	StubGateways []int
	// StubMembers lists all node indices per stub domain.
	StubMembers [][]int
}

// Generate builds a transit-stub topology:
//
//   - transit routers form a ring (plus optional random shortcuts) with
//     20 ms links,
//   - each transit router sponsors StubsPerTransit stub domains connected
//     by a 5 ms up-link,
//   - each stub domain is a random connected subgraph (spanning tree plus
//     a few shortcuts) with 2 ms links.
func Generate(cfg GeneratorConfig) (*TransitStub, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	numStubs := cfg.TransitNodes * cfg.StubsPerTransit
	total := cfg.TransitNodes + numStubs*cfg.NodesPerStub
	kinds := make([]NodeKind, total)
	for i := 0; i < cfg.TransitNodes; i++ {
		kinds[i] = TransitNode
	}
	for i := cfg.TransitNodes; i < total; i++ {
		kinds[i] = StubNode
	}
	g := NewGraph(kinds)

	// Backbone ring.
	for i := 0; i < cfg.TransitNodes; i++ {
		j := (i + 1) % cfg.TransitNodes
		if i == j {
			continue // single transit node: no self loop
		}
		if i < j || j == 0 && i == cfg.TransitNodes-1 {
			if err := g.AddEdge(i, j, IntraTransitDelay); err != nil {
				return nil, err
			}
		}
	}
	// Backbone shortcuts.
	for e := 0; e < cfg.ExtraTransitEdges && cfg.TransitNodes > 2; e++ {
		u := rng.Intn(cfg.TransitNodes)
		v := rng.Intn(cfg.TransitNodes)
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v, IntraTransitDelay); err != nil {
			return nil, err
		}
	}

	ts := &TransitStub{
		Graph:        g,
		TransitIDs:   make([]int, cfg.TransitNodes),
		StubGateways: make([]int, 0, numStubs),
		StubMembers:  make([][]int, 0, numStubs),
	}
	for i := range ts.TransitIDs {
		ts.TransitIDs[i] = i
	}

	next := cfg.TransitNodes
	for t := 0; t < cfg.TransitNodes; t++ {
		for s := 0; s < cfg.StubsPerTransit; s++ {
			members := make([]int, cfg.NodesPerStub)
			for i := range members {
				members[i] = next
				next++
			}
			gateway := members[0]
			if err := g.AddEdge(t, gateway, TransitStubDelay); err != nil {
				return nil, err
			}
			// Random spanning tree inside the stub: attach each node to a
			// uniformly random earlier node.
			for i := 1; i < len(members); i++ {
				parent := members[rng.Intn(i)]
				if err := g.AddEdge(members[i], parent, IntraStubDelay); err != nil {
					return nil, err
				}
			}
			// A few shortcut edges for realism (~25% of tree size).
			extra := len(members) / 4
			for e := 0; e < extra; e++ {
				u := members[rng.Intn(len(members))]
				v := members[rng.Intn(len(members))]
				if u == v {
					continue
				}
				if err := g.AddEdge(u, v, IntraStubDelay); err != nil {
					return nil, err
				}
			}
			ts.StubGateways = append(ts.StubGateways, gateway)
			ts.StubMembers = append(ts.StubMembers, members)
		}
	}
	return ts, nil
}

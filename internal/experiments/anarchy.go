package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"dspp/internal/game"
)

// PoAResult estimates the price of anarchy empirically: the worst
// ε-stable outcome Algorithm 2 reaches from adversarial initial quota
// splits, relative to the social optimum. Theorem 1 only pins the *best*
// equilibrium (PoS = 1); the spread between best and worst starts is the
// cost of bad coordination.
type PoAResult struct {
	Starts     int
	BestRatio  float64
	WorstRatio float64
	Table      *Table
}

// PriceOfAnarchy runs Algorithm 2 from the fair split plus several skewed
// initial quota allocations and reports the best/worst converged cost
// against the joint social optimum.
func PriceOfAnarchy(seed int64, starts int) (*PoAResult, error) {
	if starts < 2 {
		starts = 6
	}
	rng := rand.New(rand.NewSource(seed))
	scen := gameScenario(rng, 4, 3, 150)
	swp, err := game.SolveSocialWelfare(scen, gameBRConfig(150).QP)
	if err != nil {
		return nil, fmt.Errorf("swp: %w", err)
	}
	n := len(scen.Providers)
	res := &PoAResult{
		Starts:     starts,
		BestRatio:  1e18,
		WorstRatio: 0,
		Table: &Table{
			Title:   "Extension: empirical price of anarchy over initial quota splits",
			Columns: []string{"start", "NE/SWP", "iterations", "converged"},
		},
	}
	for s := 0; s < starts; s++ {
		cfg := gameBRConfig(150)
		cfg.Epsilon = 0.01
		label := "fair"
		if s > 0 {
			// Skewed start: exponential-ish random weights, so one
			// provider often begins with most of the bottleneck.
			init := make([][]float64, n)
			for i := range init {
				init[i] = []float64{0.01 + rng.ExpFloat64(), 1}
			}
			cfg.InitialQuotas = init
			label = fmt.Sprintf("skew%d", s)
		}
		br, err := game.BestResponse(scen, cfg)
		if err != nil && !errors.Is(err, game.ErrNotConverged) {
			return nil, fmt.Errorf("start %d: %w", s, err)
		}
		ratio, err := game.EfficiencyRatio(br, swp)
		if err != nil {
			return nil, err
		}
		if ratio < res.BestRatio {
			res.BestRatio = ratio
		}
		if ratio > res.WorstRatio {
			res.WorstRatio = ratio
		}
		res.Table.AddRow(label, f4(ratio), itoa(br.Iterations), fmt.Sprintf("%v", br.Converged))
	}
	return res, nil
}

// Check verifies PoS ≈ 1 from the best start and that no start strays
// absurdly far (the quota renormalization keeps outcomes bounded).
func (r *PoAResult) Check() error {
	if r.BestRatio > 1.10 || r.BestRatio < 0.97 {
		return fmt.Errorf("best ratio %g, want ≈ 1 (Theorem 1): %w", r.BestRatio, ErrShape)
	}
	if r.WorstRatio < r.BestRatio {
		return fmt.Errorf("worst %g below best %g: %w", r.WorstRatio, r.BestRatio, ErrShape)
	}
	if r.WorstRatio > 3 {
		return fmt.Errorf("worst ratio %g unreasonably large: %w", r.WorstRatio, ErrShape)
	}
	return nil
}

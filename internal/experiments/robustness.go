package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dspp/internal/core"
	"dspp/internal/faults"
	"dspp/internal/pricing"
	"dspp/internal/sim"
	"dspp/internal/workload"
)

// Outage experiment layout: two capacitated DCs sized so that either alone
// cannot carry the working-hours peak; the cheap DC goes down mid-day, which
// makes the hard horizon QP infeasible and forces the controller onto the
// soft rung of its degradation ladder until the DC comes back.
const (
	outagePeriods = 30
	outageHorizon = 6
	outageStart   = 10 // 1-based period the DC goes down
	outageEnd     = 14 // last period of the outage
	outageDC      = 0
)

// OutageResult holds the fault-injection run of the robustness experiment:
// the same scenario executed twice (with and without a mid-run DC outage)
// so re-convergence after restore can be measured directly.
type OutageResult struct {
	Hours   []int
	Demand  []float64
	Modes   []string  // degradation mode per period (fault run)
	Shed    []float64 // demand shed per period (fault run)
	Fault   *sim.Result
	NoFault *sim.Result
	Table   *Table
}

// outageScenario builds the two-DC variant of the Fig. 4 workload: one
// cheap (TX) and one expensive (CA) data center, each with 60 servers —
// comfortable together (peak needs ≈ 90), insufficient alone.
func outageScenario(seed int64, periods int) (*core.Instance, [][]float64, [][]float64, error) {
	sla, err := core.SLAMatrix([][]float64{{0.020}, {0.030}}, paperSLA)
	if err != nil {
		return nil, nil, nil, err
	}
	inst, err := core.NewInstance(core.Config{
		SLA:             sla,
		ReconfigWeights: []float64{2e-5, 2e-5},
		Capacities:      []float64{60, 60},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	model, err := workload.NewDiurnal(2500, 22000)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	demand := make([][]float64, periods+outageHorizon+1)
	for k := range demand {
		n, err := workload.SamplePoisson(model.Rate(k), 1, rng)
		if err != nil {
			return nil, nil, nil, err
		}
		demand[k] = []float64{float64(n)}
	}
	tx, _ := pricing.RegionByName("TX")
	ca, _ := pricing.RegionByName("CA")
	txPrice := pricing.DiurnalServer{Region: tx, Class: pricing.MediumVM}
	caPrice := pricing.DiurnalServer{Region: ca, Class: pricing.MediumVM}
	prices := make([][]float64, periods+outageHorizon+1)
	for k := range prices {
		prices[k] = []float64{txPrice.Price(k), caPrice.Price(k)}
	}
	return inst, demand, prices, nil
}

func outageRun(seed int64, sched *faults.Schedule) (*sim.Result, error) {
	inst, demand, prices, err := outageScenario(seed, outagePeriods)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(inst, outageHorizon)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{
		Instance:    inst,
		Policy:      &sim.MPCPolicy{Ctrl: ctrl},
		DemandTrace: demand,
		PriceTrace:  prices,
		Periods:     outagePeriods,
		Horizon:     outageHorizon,
		Faults:      sched,
	})
}

// OutageRecovery runs the degradation experiment: a mid-day outage of the
// cheap DC, versus the identical run without faults. The controller must
// finish every period — shedding demand through the soft relaxation while
// the surviving capacity is short — and snap back to the no-fault
// trajectory once the DC returns.
func OutageRecovery(seed int64) (*OutageResult, error) {
	sched := &faults.Schedule{
		Faults: []faults.Fault{
			{Kind: faults.DCOutage, Target: outageDC, Start: outageStart, End: outageEnd},
		},
		Seed: seed,
	}
	fault, err := outageRun(seed, sched)
	if err != nil {
		return nil, fmt.Errorf("fault run: %w", err)
	}
	noFault, err := outageRun(seed, nil)
	if err != nil {
		return nil, fmt.Errorf("no-fault run: %w", err)
	}

	res := &OutageResult{
		Fault:   fault,
		NoFault: noFault,
		Table: &Table{
			Title: fmt.Sprintf("Robustness: DC %d outage periods %d-%d (2 DCs, soft degradation)",
				outageDC, outageStart, outageEnd),
			Columns: []string{"hour", "demand(req/s)", "srv-dc0", "srv-dc1", "srv-nofault", "mode", "shed(req/s)"},
		},
	}
	for i, step := range fault.Steps {
		deg := step.Degradation
		var noFaultTotal float64
		for _, s := range noFault.Steps[i].ServersByDC {
			noFaultTotal += s
		}
		res.Hours = append(res.Hours, i)
		res.Demand = append(res.Demand, step.Demand[0])
		res.Modes = append(res.Modes, deg.Mode.String())
		res.Shed = append(res.Shed, deg.ShedDemand)
		res.Table.AddRow(itoa(i), f1(step.Demand[0]),
			f1(step.ServersByDC[0]), f1(step.ServersByDC[1]), f1(noFaultTotal),
			deg.Mode.String(), f1(deg.ShedDemand))
	}
	return res, nil
}

// Check verifies the degradation contract: the run completed every period,
// degraded only while the DC was down, shed demand exactly when the
// surviving capacity was short, and returned to within 1% of the no-fault
// trajectory within one horizon of the restore.
func (r *OutageResult) Check() error {
	if len(r.Fault.Steps) != outagePeriods || len(r.NoFault.Steps) != outagePeriods {
		return fmt.Errorf("fault run %d steps, no-fault %d, want %d: %w",
			len(r.Fault.Steps), len(r.NoFault.Steps), outagePeriods, ErrShape)
	}
	if r.NoFault.DegradedSteps != 0 {
		return fmt.Errorf("no-fault run degraded %d steps: %w", r.NoFault.DegradedSteps, ErrShape)
	}
	soft := 0
	for _, step := range r.Fault.Steps {
		deg := step.Degradation
		down := step.Period >= outageStart && step.Period <= outageEnd
		if deg.Degraded() && !down {
			return fmt.Errorf("period %d degraded (%v) outside the outage window: %w",
				step.Period, deg, ErrShape)
		}
		if deg.Mode == core.DegradeSoft {
			soft++
			if deg.ShedDemand <= 0 {
				return fmt.Errorf("period %d soft mode with no shed demand: %w", step.Period, ErrShape)
			}
		}
		if down && step.ServersByDC[outageDC] > 1e-3 {
			return fmt.Errorf("period %d: %g servers on the dead DC: %w",
				step.Period, step.ServersByDC[outageDC], ErrShape)
		}
	}
	if soft == 0 {
		return fmt.Errorf("outage never forced the soft rung: %w", ErrShape)
	}
	// Re-convergence: within W periods of the restore the allocation must
	// track the no-fault trajectory to 1% per DC.
	for i, step := range r.Fault.Steps {
		if step.Period < outageEnd+1+outageHorizon {
			continue
		}
		for l, s := range step.ServersByDC {
			want := r.NoFault.Steps[i].ServersByDC[l]
			if math.Abs(s-want) > 0.01*math.Max(1, want) {
				return fmt.Errorf("period %d DC %d: %g servers vs no-fault %g (>1%%): %w",
					step.Period, l, s, want, ErrShape)
			}
		}
	}
	return nil
}

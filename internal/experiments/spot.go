package experiments

import (
	"fmt"
	"math/rand"

	"dspp/internal/core"
	"dspp/internal/pricing"
	"dspp/internal/sim"
)

// SpotResult compares the controller's cost under static on-demand
// pricing against EC2-style spot pricing with a bid policy — the §I
// motivation that "the same benefit can be achieved in public clouds by
// introducing some degree of dynamic pricing, such as the one being used
// by Amazon EC2".
type SpotResult struct {
	Schemes    []string
	Cost       []float64
	Violations []int
	SavingPct  float64
	Table      *Table
}

// ExtensionSpotPricing runs the Fig. 4 day three times: flat on-demand
// prices, the regional diurnal curve, and a spot bid policy layered on
// that curve. The same demand is served in all three runs; only the bill
// changes.
func ExtensionSpotPricing(seed int64) (*SpotResult, error) {
	const periods = 48
	const horizon = 5
	inst, demand, _, err := fig4Scenario(seed, periods+horizon, 2e-5)
	if err != nil {
		return nil, err
	}
	tx, ok := pricing.RegionByName("TX")
	if !ok {
		return nil, fmt.Errorf("TX region missing: %w", ErrShape)
	}
	diurnal := pricing.DiurnalServer{Region: tx, Class: pricing.MediumVM}
	// Flat on-demand at the diurnal peak (a provider that ignores the
	// electricity market charges for the worst case).
	flatLevel := 0.0
	for k := 0; k < 24; k++ {
		if p := diurnal.Price(k); p > flatLevel {
			flatLevel = p
		}
	}
	spot, err := pricing.NewSpotMarket(diurnal, pricing.SpotConfig{}, rand.New(rand.NewSource(seed+5)))
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name  string
		model pricing.Model
	}{
		{"flat-on-demand", pricing.Constant{Level: flatLevel}},
		{"diurnal", diurnal},
		{"spot-bid-0.6", pricing.BidPolicy{Market: spot, BidFraction: 0.6}},
	}
	res := &SpotResult{
		Table: &Table{
			Title:   "Extension: pricing scheme vs controller cost (same demand)",
			Columns: []string{"pricing", "total cost", "SLA violations"},
		},
	}
	for _, sc := range schemes {
		prices := make([][]float64, periods+horizon+1)
		for k := range prices {
			prices[k] = []float64{sc.model.Price(k)}
		}
		ctrl, err := core.NewController(inst, horizon)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(sim.Config{
			Instance:    inst,
			Policy:      &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     periods,
			Horizon:     horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		res.Schemes = append(res.Schemes, sc.name)
		res.Cost = append(res.Cost, run.TotalCost)
		res.Violations = append(res.Violations, run.SLAViolations)
		res.Table.AddRow(sc.name, f2(run.TotalCost), itoa(run.SLAViolations))
	}
	res.SavingPct = 100 * (res.Cost[0] - res.Cost[2]) / res.Cost[0]
	return res, nil
}

// Check verifies the pricing ladder: diurnal undercuts flat-peak pricing,
// the spot bid policy undercuts both, and the SLA holds throughout (the
// demand side is identical in all runs).
func (r *SpotResult) Check() error {
	if len(r.Cost) != 3 {
		return fmt.Errorf("want 3 schemes, got %d: %w", len(r.Cost), ErrShape)
	}
	for i, v := range r.Violations {
		if v != 0 {
			return fmt.Errorf("%s violated the SLA %d times: %w", r.Schemes[i], v, ErrShape)
		}
	}
	if !(r.Cost[2] < r.Cost[1] && r.Cost[1] < r.Cost[0]) {
		return fmt.Errorf("cost ladder broken: %v: %w", r.Cost, ErrShape)
	}
	return nil
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dspp/internal/core"
	"dspp/internal/parallel"
	"dspp/internal/predict"
	"dspp/internal/pricing"
	"dspp/internal/sim"
	"dspp/internal/workload"
)

// paperSLA is the queueing/SLA configuration shared by the single-provider
// experiments: 250 req/s per server, 250 ms total-latency SLA.
var paperSLA = core.SLAConfig{Mu: 250, MaxDelay: 0.25}

// Fig3Result holds the regenerated electricity price curves of Fig. 3.
type Fig3Result struct {
	Hours    []int
	Regions  []string
	PriceMWh [][]float64 // [region][hour]
	Table    *Table
}

// Fig3Prices regenerates the input price curves: hourly $/MWh per region.
func Fig3Prices() *Fig3Result {
	regions := pricing.PaperRegions()
	res := &Fig3Result{
		Table: &Table{
			Title:   "Fig 3: electricity prices over one day ($/MWh)",
			Columns: []string{"hour", "CA", "TX", "GA", "IL"},
		},
	}
	for _, r := range regions {
		res.Regions = append(res.Regions, r.Name)
	}
	res.PriceMWh = make([][]float64, len(regions))
	for h := 0; h < 24; h++ {
		res.Hours = append(res.Hours, h)
		cells := []string{itoa(h)}
		for i, r := range regions {
			p := r.PriceMWh(float64(h))
			res.PriceMWh[i] = append(res.PriceMWh[i], p)
			cells = append(cells, f1(p))
		}
		res.Table.AddRow(cells...)
	}
	return res
}

// Check verifies the Fig. 3 shape: CA most expensive, TX cheapest, with
// the CA–TX spread peaking in the afternoon.
func (r *Fig3Result) Check() error {
	caIdx, txIdx := -1, -1
	for i, name := range r.Regions {
		switch name {
		case "CA":
			caIdx = i
		case "TX":
			txIdx = i
		}
	}
	if caIdx < 0 || txIdx < 0 {
		return fmt.Errorf("missing CA/TX region: %w", ErrShape)
	}
	peakHour, peakSpread := 0, 0.0
	for h := range r.Hours {
		if r.PriceMWh[caIdx][h] <= r.PriceMWh[txIdx][h] {
			return fmt.Errorf("hour %d: CA not above TX: %w", h, ErrShape)
		}
		if s := r.PriceMWh[caIdx][h] - r.PriceMWh[txIdx][h]; s > peakSpread {
			peakHour, peakSpread = h, s
		}
	}
	if peakHour < 12 || peakHour > 20 {
		return fmt.Errorf("CA-TX spread peaks at hour %d, want afternoon: %w", peakHour, ErrShape)
	}
	return nil
}

// fig4Scenario builds the single-DC, single-access-network workload of
// Fig. 4: a diurnal on-off Poisson demand peaking around 2.2e4 req/s,
// with the given reconfiguration weight.
func fig4Scenario(seed int64, periods int, reconfigWeight float64) (*core.Instance, [][]float64, [][]float64, error) {
	sla, err := core.SLAMatrix([][]float64{{0.020}}, paperSLA)
	if err != nil {
		return nil, nil, nil, err
	}
	inst, err := core.NewInstance(core.Config{
		SLA:             sla,
		ReconfigWeights: []float64{reconfigWeight},
		Capacities:      []float64{2000},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	model, err := workload.NewDiurnal(2500, 22000)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	demand := make([][]float64, periods+2)
	for k := range demand {
		mean := model.Rate(k)
		// Poisson-realized request count for the hour, expressed back as
		// a mean rate (the controller sees realized arrivals).
		n, err := workload.SamplePoisson(mean, 1, rng)
		if err != nil {
			return nil, nil, nil, err
		}
		demand[k] = []float64{float64(n)}
	}
	tx, _ := pricing.RegionByName("TX")
	price := pricing.DiurnalServer{Region: tx, Class: pricing.MediumVM}
	prices := make([][]float64, periods+2)
	for k := range prices {
		prices[k] = []float64{price.Price(k)}
	}
	return inst, demand, prices, nil
}

// Fig4Result holds the demand-tracking run of Fig. 4.
type Fig4Result struct {
	Hours   []int
	Demand  []float64 // realized req/s
	Servers []float64 // allocated servers
	Table   *Table
	Run     *sim.Result
}

// Fig4DemandTracking reproduces Fig. 4: the controller matches the daily
// demand curve while damping reconfiguration.
func Fig4DemandTracking(seed int64) (*Fig4Result, error) {
	const periods = 24
	inst, demand, prices, err := fig4Scenario(seed, periods, 2e-5)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(inst, 5)
	if err != nil {
		return nil, err
	}
	run, err := sim.Run(sim.Config{
		Instance:    inst,
		Policy:      &sim.MPCPolicy{Ctrl: ctrl},
		DemandTrace: demand,
		PriceTrace:  prices,
		Periods:     periods,
		Horizon:     5,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{
		Run: run,
		Table: &Table{
			Title:   "Fig 4: demand vs allocated servers (1 DC, 1 access network)",
			Columns: []string{"hour", "demand(req/s)", "servers"},
		},
	}
	for i, step := range run.Steps {
		res.Hours = append(res.Hours, i)
		res.Demand = append(res.Demand, step.Demand[0])
		res.Servers = append(res.Servers, step.ServersByDC[0])
		res.Table.AddRow(itoa(i), f1(step.Demand[0]), f1(step.ServersByDC[0]))
	}
	return res, nil
}

// Check verifies Fig. 4's shape: allocation rises with the working-hours
// demand and falls back at night, staying SLA-feasible throughout.
func (r *Fig4Result) Check() error {
	if r.Run.SLAViolations > 0 {
		return fmt.Errorf("%d SLA violations with perfect forecast: %w", r.Run.SLAViolations, ErrShape)
	}
	day := r.Servers[12]  // noon
	night := r.Servers[3] // 4am
	if day < 4*night {
		return fmt.Errorf("noon %g vs night %g servers: tracking too weak: %w", day, night, ErrShape)
	}
	// Demand and allocation must be strongly correlated.
	if corr := correlation(r.Demand, r.Servers); corr < 0.9 {
		return fmt.Errorf("demand/server correlation %g < 0.9: %w", corr, ErrShape)
	}
	return nil
}

// Fig5Result holds the price-shifting run of Fig. 5.
type Fig5Result struct {
	Hours   []int
	DCNames []string
	Servers [][]float64 // [dc][hour]
	Table   *Table
	Run     *sim.Result
}

// Fig5PriceShifting reproduces Fig. 5: with constant aggregate demand and
// diurnal regional prices, the controller shifts servers away from
// Mountain View (CA, expensive) toward Houston (TX, cheap), most strongly
// in the late afternoon when the CA-TX spread peaks.
func Fig5PriceShifting() (*Fig5Result, error) {
	// 3 DCs: Mountain View CA, Houston TX, Atlanta GA, each local to one
	// customer region. Serving a region from a remote DC is SLA-feasible
	// but needs ~1.9x the servers (the remote latency eats most of the
	// delay budget), so the controller faces the paper's trade-off: pay
	// the local price, or pay the remote server-count premium. The CA-TX
	// price ratio crosses that premium in the afternoon, which is when
	// load migrates out of Mountain View.
	latency := [][]float64{
		{0.020, 0.052, 0.052},
		{0.052, 0.020, 0.052},
		{0.052, 0.052, 0.020},
	}
	sla, err := core.SLAMatrix(latency, core.SLAConfig{Mu: 30, MaxDelay: 0.1})
	if err != nil {
		return nil, err
	}
	inst, err := core.NewInstance(core.Config{
		SLA:             sla,
		ReconfigWeights: []float64{2e-4, 2e-4, 2e-4},
		Capacities:      []float64{2000, 2000, 2000},
	})
	if err != nil {
		return nil, err
	}
	const periods = 24
	demand := make([][]float64, periods+2)
	for k := range demand {
		demand[k] = []float64{300, 300, 300} // constant arrival rate
	}
	ca, _ := pricing.RegionByName("CA")
	tx, _ := pricing.RegionByName("TX")
	ga, _ := pricing.RegionByName("GA")
	models := []pricing.Model{
		pricing.DiurnalServer{Region: ca, Class: pricing.MediumVM},
		pricing.DiurnalServer{Region: tx, Class: pricing.MediumVM},
		pricing.DiurnalServer{Region: ga, Class: pricing.MediumVM},
	}
	prices := make([][]float64, periods+2)
	for k := range prices {
		prices[k] = make([]float64, 3)
		for l, m := range models {
			prices[k][l] = m.Price(k)
		}
	}
	ctrl, err := core.NewController(inst, 5)
	if err != nil {
		return nil, err
	}
	run, err := sim.Run(sim.Config{
		Instance:    inst,
		Policy:      &sim.MPCPolicy{Ctrl: ctrl},
		DemandTrace: demand,
		PriceTrace:  prices,
		Periods:     periods,
		Horizon:     5,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		DCNames: []string{"Mountain View, CA", "Houston, TX", "Atlanta, GA"},
		Servers: make([][]float64, 3),
		Run:     run,
		Table: &Table{
			Title:   "Fig 5: servers per data center under diurnal prices (constant demand)",
			Columns: []string{"hour", "MountainView", "Houston", "Atlanta"},
		},
	}
	for i, step := range run.Steps {
		res.Hours = append(res.Hours, i)
		cells := []string{itoa(i)}
		for l := 0; l < 3; l++ {
			res.Servers[l] = append(res.Servers[l], step.ServersByDC[l])
			cells = append(cells, f1(step.ServersByDC[l]))
		}
		res.Table.AddRow(cells...)
	}
	return res, nil
}

// Check verifies Fig. 5's shape: in the afternoon Mountain View's share
// shrinks below Houston's, and Mountain View holds fewer servers in the
// afternoon than overnight.
func (r *Fig5Result) Check() error {
	if r.Run.SLAViolations > 0 {
		return fmt.Errorf("%d SLA violations: %w", r.Run.SLAViolations, ErrShape)
	}
	mv, hou := r.Servers[0], r.Servers[1]
	afternoon := 17
	if mv[afternoon] >= hou[afternoon] {
		return fmt.Errorf("5pm: MV %g ≥ Houston %g: %w", mv[afternoon], hou[afternoon], ErrShape)
	}
	if mv[afternoon] >= mv[2]-1e-9 {
		return fmt.Errorf("MV afternoon %g not below MV night %g: %w", mv[afternoon], mv[2], ErrShape)
	}
	return nil
}

// Fig6Result holds the horizon-smoothing sweep of Fig. 6.
type Fig6Result struct {
	Horizons  []int
	MaxStep   []float64   // max per-period total |u|
	Servers   [][]float64 // [horizon][hour]
	TotalCost []float64
	Table     *Table
}

// Fig6HorizonSmoothing reproduces Fig. 6: the same diurnal workload run
// with prediction horizons K ∈ {1, 10, 20, 30}; longer horizons change
// the server count more gradually.
func Fig6HorizonSmoothing(seed int64) (*Fig6Result, error) {
	const periods = 24
	horizons := []int{1, 10, 20, 30}
	res := &Fig6Result{
		Horizons: horizons,
		Table: &Table{
			Title:   "Fig 6: effect of prediction horizon on allocation smoothness",
			Columns: []string{"K", "max|u| per period", "total cost"},
		},
	}
	for _, w := range horizons {
		// A substantial reconfiguration weight makes lookahead matter:
		// with c this large the controller pre-ramps ahead of the 8am
		// demand step when it can see it coming.
		inst, demand, prices, err := fig4Scenario(seed, periods+w, 5e-3)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewController(inst, w)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(sim.Config{
			Instance:    inst,
			Policy:      &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     periods,
			Horizon:     w,
		})
		if err != nil {
			return nil, fmt.Errorf("K=%d: %w", w, err)
		}
		res.MaxStep = append(res.MaxStep, run.MaxControl())
		res.Servers = append(res.Servers, run.ServersSeries())
		res.TotalCost = append(res.TotalCost, run.TotalCost)
		res.Table.AddRow(itoa(w), f1(run.MaxControl()), f2(run.TotalCost))
	}
	return res, nil
}

// Check verifies Fig. 6's shape: the largest per-period change shrinks as
// the horizon grows.
func (r *Fig6Result) Check() error {
	return checkMonotone("fig6 max|u|", r.MaxStep, -1, 0.02)
}

// HorizonCostResult is shared by Figs. 9 and 10: solution cost as a
// function of the prediction horizon.
type HorizonCostResult struct {
	Horizons []int
	Cost     []float64
	Table    *Table
}

// Fig9HorizonVsCost reproduces Fig. 9: with volatile demand and prices
// forecast by a simple AR model, longer horizons eventually hurt; the
// paper finds the sweet spot at K ≈ 2.
func Fig9HorizonVsCost(seed int64) (*HorizonCostResult, error) {
	const periods = 48
	maxW := 12
	sla, err := core.SLAMatrix([][]float64{{0.02, 0.05}, {0.05, 0.02}}, paperSLA)
	if err != nil {
		return nil, err
	}
	// The reconfiguration weight is substantial so the prediction horizon
	// genuinely shapes the control: the controller pre-positions servers
	// based on multi-step forecasts, which backfires when those forecasts
	// are wrong (the paper's Fig. 9 effect).
	inst, err := core.NewInstance(core.Config{
		SLA:             sla,
		ReconfigWeights: []float64{8e-3, 8e-3},
		Capacities:      []float64{2000, 2000},
	})
	if err != nil {
		return nil, err
	}
	// Volatile mean-reverting demand and prices (hard for AR forecasts).
	demandRNG := rand.New(rand.NewSource(seed))
	walk1, err := workload.NewRandomWalk(8000, 0.3, 0.15, demandRNG)
	if err != nil {
		return nil, err
	}
	walk2, err := workload.NewRandomWalk(6000, 0.3, 0.15, demandRNG)
	if err != nil {
		return nil, err
	}
	demand := make([][]float64, periods+maxW+2)
	for k := range demand {
		demand[k] = []float64{walk1.Rate(k), walk2.Rate(k)}
	}
	priceRNG := rand.New(rand.NewSource(seed + 1))
	pv1, err := pricing.NewVolatile(pricing.Constant{Level: 0.05}, 0.3, 0.05, priceRNG)
	if err != nil {
		return nil, err
	}
	pv2, err := pricing.NewVolatile(pricing.Constant{Level: 0.06}, 0.3, 0.05, priceRNG)
	if err != nil {
		return nil, err
	}
	prices := make([][]float64, periods+maxW+2)
	for k := range prices {
		prices[k] = []float64{pv1.Price(k), pv2.Price(k)}
	}

	res := &HorizonCostResult{
		Table: &Table{
			Title:   "Fig 9: cost vs prediction horizon (volatile demand+price, AR predictor)",
			Columns: []string{"W", "total cost"},
		},
	}
	// The horizon runs are independent closed loops over the same immutable
	// instance and traces: fan out, then assemble the table in W order.
	costs := make([]float64, maxW)
	err = parallel.ForEach(maxW, 0, func(i int) error {
		w := i + 1
		ctrl, err := core.NewController(inst, w)
		if err != nil {
			return err
		}
		run, err := sim.Run(sim.Config{
			Instance:        inst,
			Policy:          &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace:     demand,
			PriceTrace:      prices,
			Periods:         periods,
			Horizon:         w,
			DemandPredictor: predict.AR{P: 2, Window: 10},
			PricePredictor:  predict.AR{P: 2, Window: 10},
		})
		if err != nil {
			return fmt.Errorf("W=%d: %w", w, err)
		}
		costs[i] = run.TotalCost
		return nil
	})
	if err != nil {
		return nil, err
	}
	for w := 1; w <= maxW; w++ {
		res.Horizons = append(res.Horizons, w)
		res.Cost = append(res.Cost, costs[w-1])
		res.Table.AddRow(itoa(w), f2(costs[w-1]))
	}
	return res, nil
}

// CheckFig9 verifies Fig. 9's shape: the best horizon is short (≤ 4) and
// the longest horizon is strictly worse than the best.
func (r *HorizonCostResult) CheckFig9() error {
	best, bestW := math.Inf(1), 0
	for i, c := range r.Cost {
		if c < best {
			best, bestW = c, r.Horizons[i]
		}
	}
	if bestW > 4 {
		return fmt.Errorf("best horizon %d, want short (≤4): %w", bestW, ErrShape)
	}
	last := r.Cost[len(r.Cost)-1]
	if last <= best*1.005 {
		return fmt.Errorf("long horizon %g not worse than best %g: %w", last, best, ErrShape)
	}
	return nil
}

// Fig10ConstantHorizon reproduces Fig. 10: with constant demand and
// prices (perfectly predictable), longer horizons never hurt. The run
// starts over-provisioned, so the controller must plan a scale-down glide
// path: with a longer window it spreads the (quadratic) reconfiguration
// over more periods and lands on a cheaper trajectory.
func Fig10ConstantHorizon() (*HorizonCostResult, error) {
	const periods = 24
	maxW := 10
	sla, err := core.SLAMatrix([][]float64{{0.02}}, paperSLA)
	if err != nil {
		return nil, err
	}
	inst, err := core.NewInstance(core.Config{
		SLA:             sla,
		ReconfigWeights: []float64{2e-2},
		Capacities:      []float64{2000},
	})
	if err != nil {
		return nil, err
	}
	demand := make([][]float64, periods+maxW+2)
	prices := make([][]float64, periods+maxW+2)
	for k := range demand {
		demand[k] = []float64{10000}
		prices[k] = []float64{0.05}
	}
	res := &HorizonCostResult{
		Table: &Table{
			Title:   "Fig 10: cost vs prediction horizon (constant demand and price)",
			Columns: []string{"W", "total cost"},
		},
	}
	// Start 3x over-provisioned: the interesting control problem is the
	// glide path down to the steady state.
	start := inst.NewState()
	start[0][0] = 125
	for w := 1; w <= maxW; w++ {
		ctrl, err := core.NewController(inst, w, core.WithInitialState(start))
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(sim.Config{
			Instance:    inst,
			Policy:      &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     periods,
			Horizon:     w,
		})
		if err != nil {
			return nil, fmt.Errorf("W=%d: %w", w, err)
		}
		res.Horizons = append(res.Horizons, w)
		res.Cost = append(res.Cost, run.TotalCost)
		res.Table.AddRow(itoa(w), f2(run.TotalCost))
	}
	return res, nil
}

// CheckFig10 verifies Fig. 10's shape: cost is non-increasing in the
// horizon when the future is perfectly predictable.
func (r *HorizonCostResult) CheckFig10() error {
	return checkMonotone("fig10 cost", r.Cost, -1, 0.01)
}

// correlation returns the Pearson correlation of two equal-length series.
func correlation(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 || len(a) != len(b) {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dspp/internal/baseline"
	"dspp/internal/core"
	"dspp/internal/game"
	"dspp/internal/packing"
	"dspp/internal/predict"
	"dspp/internal/qp"
	"dspp/internal/queue"
	"dspp/internal/sim"
	"dspp/internal/workload"
)

// ReconfigWeightResult sweeps the quadratic reconfiguration weight c.
type ReconfigWeightResult struct {
	Weights   []float64
	MaxStep   []float64
	TotalMove []float64
	Cost      []float64
	Table     *Table
}

// AblationReconfigWeight probes the §IV-A design choice: larger quadratic
// penalties damp reconfiguration (stability) at some resource-cost
// premium.
func AblationReconfigWeight(seed int64) (*ReconfigWeightResult, error) {
	weights := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
	res := &ReconfigWeightResult{
		Weights: weights,
		Table: &Table{
			Title:   "Ablation: reconfiguration weight c",
			Columns: []string{"c", "max|u|", "total|u|", "total cost"},
		},
	}
	const periods = 24
	for _, c := range weights {
		sla, err := core.SLAMatrix([][]float64{{0.020}}, paperSLA)
		if err != nil {
			return nil, err
		}
		inst, err := core.NewInstance(core.Config{
			SLA:             sla,
			ReconfigWeights: []float64{c},
			Capacities:      []float64{2000},
		})
		if err != nil {
			return nil, err
		}
		_, demand, prices, err := fig4Scenario(seed, periods+5, 2e-5)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewController(inst, 5)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(sim.Config{
			Instance:    inst,
			Policy:      &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     periods,
			Horizon:     5,
		})
		if err != nil {
			return nil, fmt.Errorf("c=%g: %w", c, err)
		}
		var totalMove float64
		for _, s := range run.Steps {
			for _, row := range s.Control {
				for _, u := range row {
					totalMove += math.Abs(u)
				}
			}
		}
		res.MaxStep = append(res.MaxStep, run.MaxControl())
		res.TotalMove = append(res.TotalMove, totalMove)
		res.Cost = append(res.Cost, run.TotalCost)
		res.Table.AddRow(fmt.Sprintf("%.0e", c), f1(run.MaxControl()), f1(totalMove), f2(run.TotalCost))
	}
	return res, nil
}

// Check verifies that movement decreases as c grows.
func (r *ReconfigWeightResult) Check() error {
	return checkMonotone("ablation total|u|", r.TotalMove, -1, 0.05)
}

// BaselineResult compares the MPC controller against the baselines.
type BaselineResult struct {
	Policies   []string
	Cost       []float64
	Violations []int
	Table      *Table
}

// AblationBaselines runs MPC (W=5), myopic (W=1), static-average,
// greedy-nearest and lazy-threshold on a two-DC scenario with diurnal
// demand and a persistent price gap, with perfect forecasts.
func AblationBaselines(seed int64) (*BaselineResult, error) {
	const periods = 48
	sla, err := core.SLAMatrix([][]float64{{0.02, 0.06}, {0.06, 0.02}}, paperSLA)
	if err != nil {
		return nil, err
	}
	inst, err := core.NewInstance(core.Config{
		SLA:             sla,
		ReconfigWeights: []float64{2e-5, 2e-5},
		Capacities:      []float64{2000, 2000},
	})
	if err != nil {
		return nil, err
	}
	model, err := workload.NewDiurnal(1500, 12000)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	demand := make([][]float64, periods+6)
	for k := range demand {
		n1, err := workload.SamplePoisson(model.Rate(k), 1, rng)
		if err != nil {
			return nil, err
		}
		n2, err := workload.SamplePoisson(model.Rate(k+6), 1, rng)
		if err != nil {
			return nil, err
		}
		demand[k] = []float64{float64(n1), float64(n2)}
	}
	prices := make([][]float64, periods+6)
	for k := range prices {
		h := k % 24
		p0 := 0.04
		if h >= 10 && h <= 20 {
			p0 = 0.10 // DC0 becomes expensive at midday
		}
		prices[k] = []float64{p0, 0.05}
	}

	mk := func() []sim.Policy {
		ctrl5, err := core.NewController(inst, 5)
		if err != nil {
			panic(err) // construction with validated inputs cannot fail
		}
		myo, err := baseline.NewMyopic(inst, qp.DefaultOptions())
		if err != nil {
			panic(err)
		}
		static, err := baseline.NewStaticAverage(inst, demand, prices, qp.DefaultOptions())
		if err != nil {
			panic(err)
		}
		greedy, err := baseline.NewGreedyNearest(inst)
		if err != nil {
			panic(err)
		}
		lazy, err := baseline.NewLazyThreshold(inst, 1.2, 1.8, qp.DefaultOptions())
		if err != nil {
			panic(err)
		}
		return []sim.Policy{&sim.MPCPolicy{Ctrl: ctrl5}, myo, static, greedy, lazy}
	}

	res := &BaselineResult{
		Table: &Table{
			Title:   "Ablation: MPC vs baseline policies",
			Columns: []string{"policy", "total cost", "SLA violations"},
		},
	}
	for _, pol := range mk() {
		run, err := sim.Run(sim.Config{
			Instance:    inst,
			Policy:      pol,
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     periods,
			Horizon:     5,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pol.Name(), err)
		}
		res.Policies = append(res.Policies, run.PolicyName)
		res.Cost = append(res.Cost, run.TotalCost)
		res.Violations = append(res.Violations, run.SLAViolations)
		res.Table.AddRow(run.PolicyName, f2(run.TotalCost), itoa(run.SLAViolations))
	}
	return res, nil
}

// Check verifies that MPC is the cheapest violation-free policy.
func (r *BaselineResult) Check() error {
	var mpcCost float64
	found := false
	for i, name := range r.Policies {
		if name == "mpc-w5" {
			mpcCost = r.Cost[i]
			if r.Violations[i] != 0 {
				return fmt.Errorf("mpc violated SLA %d times: %w", r.Violations[i], ErrShape)
			}
			found = true
		}
	}
	if !found {
		return fmt.Errorf("mpc-w5 missing: %w", ErrShape)
	}
	for i, name := range r.Policies {
		if name == "mpc-w5" || r.Violations[i] > 0 {
			continue
		}
		if r.Cost[i] < mpcCost*0.999 {
			return fmt.Errorf("%s (%g) beat MPC (%g): %w", name, r.Cost[i], mpcCost, ErrShape)
		}
	}
	return nil
}

// SLAExtensionResult sweeps the §IV-B SLA extensions.
type SLAExtensionResult struct {
	Labels      []string
	Coefficient []float64
	Cost        []float64
	Table       *Table
}

// AblationPercentileSLA compares the mean-delay SLA against the
// 95th-percentile SLA: the percentile factor ln 20 ≈ 3 tightens a^lv and
// raises cost.
func AblationPercentileSLA() (*SLAExtensionResult, error) {
	res := &SLAExtensionResult{
		Table: &Table{
			Title:   "Ablation: mean-delay vs 95th-percentile SLA",
			Columns: []string{"SLA", "a(lv)", "total cost"},
		},
	}
	for _, phi := range []float64{0, 0.95} {
		cfg := paperSLA
		cfg.Percentile = phi
		sla, err := core.SLAMatrix([][]float64{{0.020}}, cfg)
		if err != nil {
			return nil, err
		}
		if math.IsInf(sla[0][0], 1) {
			return nil, fmt.Errorf("phi=%g produced infeasible pair: %w", phi, ErrShape)
		}
		inst, err := core.NewInstance(core.Config{
			SLA:             sla,
			ReconfigWeights: []float64{2e-5},
			Capacities:      []float64{5000},
		})
		if err != nil {
			return nil, err
		}
		const periods = 12
		demand := make([][]float64, periods+3)
		prices := make([][]float64, periods+3)
		for k := range demand {
			demand[k] = []float64{8000}
			prices[k] = []float64{0.05}
		}
		ctrl, err := core.NewController(inst, 2)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(sim.Config{
			Instance:    inst,
			Policy:      &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     periods,
			Horizon:     2,
		})
		if err != nil {
			return nil, err
		}
		label := "mean"
		if phi > 0 {
			label = "p95"
		}
		res.Labels = append(res.Labels, label)
		res.Coefficient = append(res.Coefficient, sla[0][0])
		res.Cost = append(res.Cost, run.TotalCost)
		res.Table.AddRow(label, f4(sla[0][0]), f2(run.TotalCost))
	}
	return res, nil
}

// Check verifies that the percentile SLA needs more servers (higher a and
// cost) than the mean SLA.
func (r *SLAExtensionResult) Check() error {
	if len(r.Cost) != 2 {
		return fmt.Errorf("want 2 rows, got %d: %w", len(r.Cost), ErrShape)
	}
	if r.Coefficient[1] <= r.Coefficient[0] {
		return fmt.Errorf("p95 coefficient %g not above mean %g: %w", r.Coefficient[1], r.Coefficient[0], ErrShape)
	}
	if r.Cost[1] <= r.Cost[0] {
		return fmt.Errorf("p95 cost %g not above mean %g: %w", r.Cost[1], r.Cost[0], ErrShape)
	}
	return nil
}

// ReservationResult sweeps the reservation ratio r.
type ReservationResult struct {
	Ratios     []float64
	Cost       []float64
	Violations []int
	Table      *Table
}

// AblationReservationRatio shows the §IV-B capacity-cushion trade-off:
// with an imperfect (persistence) forecast and noisy demand, a larger
// reservation ratio r buys fewer SLA violations at higher cost.
func AblationReservationRatio(seed int64) (*ReservationResult, error) {
	ratios := []float64{1.0, 1.2, 1.5}
	res := &ReservationResult{
		Ratios: ratios,
		Table: &Table{
			Title:   "Ablation: reservation ratio r under imperfect forecasts",
			Columns: []string{"r", "total cost", "SLA violations"},
		},
	}
	const periods = 48
	// Noisy demand that persistence consistently lags.
	rng := rand.New(rand.NewSource(seed))
	walk, err := workload.NewRandomWalk(8000, 0.25, 0.05, rng)
	if err != nil {
		return nil, err
	}
	demand := make([][]float64, periods+3)
	for k := range demand {
		demand[k] = []float64{walk.Rate(k)}
	}
	prices := make([][]float64, periods+3)
	for k := range prices {
		prices[k] = []float64{0.05}
	}
	for _, ratio := range ratios {
		cfg := paperSLA
		cfg.ReservationRatio = ratio
		sla, err := core.SLAMatrix([][]float64{{0.020}}, cfg)
		if err != nil {
			return nil, err
		}
		// Violations are judged against the un-cushioned SLA.
		baseSLA, err := core.SLAMatrix([][]float64{{0.020}}, paperSLA)
		if err != nil {
			return nil, err
		}
		inst, err := core.NewInstance(core.Config{
			SLA:             sla,
			ReconfigWeights: []float64{2e-5},
			Capacities:      []float64{5000},
		})
		if err != nil {
			return nil, err
		}
		judge, err := core.NewInstance(core.Config{
			SLA:             baseSLA,
			ReconfigWeights: []float64{2e-5},
			Capacities:      []float64{5000},
		})
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewController(inst, 2)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(sim.Config{
			Instance:        inst,
			Policy:          &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace:     demand,
			PriceTrace:      prices,
			Periods:         periods,
			Horizon:         2,
			DemandPredictor: predict.Persistence{},
			SLAJudge:        judge, // violations judged against the true SLA
		})
		if err != nil {
			return nil, fmt.Errorf("r=%g: %w", ratio, err)
		}
		res.Cost = append(res.Cost, run.TotalCost)
		res.Violations = append(res.Violations, run.SLAViolations)
		res.Table.AddRow(f2(ratio), f2(run.TotalCost), itoa(run.SLAViolations))
	}
	return res, nil
}

// Check verifies that cost rises and violations do not rise with r.
func (r *ReservationResult) Check() error {
	if err := checkMonotone("reservation cost", r.Cost, 1, 0.01); err != nil {
		return err
	}
	for i := 1; i < len(r.Violations); i++ {
		if r.Violations[i] > r.Violations[i-1] {
			return fmt.Errorf("violations rose from %d to %d at r=%g: %w",
				r.Violations[i-1], r.Violations[i], r.Ratios[i], ErrShape)
		}
	}
	if r.Violations[0] == 0 {
		return fmt.Errorf("r=1 shows no violations; scenario too easy: %w", ErrShape)
	}
	return nil
}

// StepSizeResult sweeps Algorithm 2's quota step α and decay schedule,
// measuring the residual oscillation of the total cost after a fixed
// number of rounds.
type StepSizeResult struct {
	Alphas    []float64
	Decays    []float64
	TailInsta []float64 // max |ΔJ|/J over the last 20 of 300 rounds
	FinalCost []float64
	Table     *Table
}

// AblationGameStepSize probes the quota update of Algorithm 2 by running
// every configuration for exactly 300 rounds (no convergence cutoff) and
// reporting the tail instability: a large constant step keeps the costs
// oscillating; the same step with a diminishing 1/√t schedule (the dual-
// subgradient method the paper's reference [27] prescribes) damps the
// oscillation.
func AblationGameStepSize(seed int64) (*StepSizeResult, error) {
	cases := []struct {
		alpha, decay float64
	}{
		{1, 0}, {10, 0}, {500, 0}, {150, 1}, {500, 1},
	}
	const rounds = 300
	res := &StepSizeResult{
		Table: &Table{
			Title:   "Ablation: Algorithm 2 quota step size α and decay (300 rounds)",
			Columns: []string{"alpha", "decay", "tail instability", "final cost"},
		},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(seed))
		s := gameScenario(rng, 5, 3, 150)
		cfg := game.BestResponseConfig{
			Alpha: c.alpha, StepDecay: c.decay,
			Epsilon:       1e-12, // never triggers: fixed-length run
			MaxIterations: rounds,
		}
		br, err := game.BestResponse(s, cfg)
		if err != nil && !errors.Is(err, game.ErrNotConverged) {
			return nil, fmt.Errorf("alpha=%g: %w", c.alpha, err)
		}
		insta := tailInstability(br.CostHistory, 20)
		res.Alphas = append(res.Alphas, c.alpha)
		res.Decays = append(res.Decays, c.decay)
		res.TailInsta = append(res.TailInsta, insta)
		res.FinalCost = append(res.FinalCost, br.Total)
		res.Table.AddRow(f1(c.alpha), f1(c.decay), f4(insta), f2(br.Total))
	}
	return res, nil
}

// tailInstability returns the maximum relative round-to-round change of
// the series over its last n entries.
func tailInstability(history []float64, n int) float64 {
	if len(history) < 2 {
		return 0
	}
	start := len(history) - n
	if start < 1 {
		start = 1
	}
	var worst float64
	for i := start; i < len(history); i++ {
		if history[i-1] == 0 {
			continue
		}
		if d := math.Abs(history[i]-history[i-1]) / math.Abs(history[i-1]); d > worst {
			worst = d
		}
	}
	return worst
}

// Check asserts the subgradient-method contrast, which holds for any
// scenario: decaying the large step strictly damps the residual
// oscillation, and the tiny constant step is at least as calm as the
// large constant step.
func (r *StepSizeResult) Check() error {
	find := func(alpha, decay float64) int {
		for i := range r.Alphas {
			if r.Alphas[i] == alpha && r.Decays[i] == decay {
				return i
			}
		}
		return -1
	}
	largeConst := find(500, 0)
	largeDecay := find(500, 1)
	tiny := find(1, 0)
	if largeConst < 0 || largeDecay < 0 || tiny < 0 {
		return fmt.Errorf("missing sweep points: %w", ErrShape)
	}
	if r.TailInsta[largeDecay] >= r.TailInsta[largeConst] {
		return fmt.Errorf("decay did not damp: decayed %g vs constant %g: %w",
			r.TailInsta[largeDecay], r.TailInsta[largeConst], ErrShape)
	}
	if r.TailInsta[tiny] > r.TailInsta[largeConst] {
		return fmt.Errorf("tiny step (%g) wilder than large step (%g): %w",
			r.TailInsta[tiny], r.TailInsta[largeConst], ErrShape)
	}
	return nil
}

// FFDResult is the packing sanity experiment backing §VI's exact-capacity
// assumption.
type FFDResult struct {
	Trials   int
	AllExact bool
	MaxWaste float64
	Table    *Table
}

// AblationFFDExactness packs random GoGrid-style (doubling) VM mixes with
// FFD and reports whether every packing met the theoretical lower bound.
func AblationFFDExactness(seed int64, trials int) (*FFDResult, error) {
	if trials < 1 {
		trials = 100
	}
	rng := rand.New(rand.NewSource(seed))
	res := &FFDResult{Trials: trials, AllExact: true,
		Table: &Table{
			Title:   "Ablation: FFD exactness on divisible VM sizes (§VI)",
			Columns: []string{"trials", "all at lower bound", "max waste in full bins"},
		},
	}
	sizes := []float64{1, 2, 4, 8, 16, 32}
	for tr := 0; tr < trials; tr++ {
		n := 1 + rng.Intn(80)
		items := make([]float64, n)
		for i := range items {
			items[i] = sizes[rng.Intn(len(sizes))]
		}
		pack, lb, err := packAndBound(items, 32)
		if err != nil {
			return nil, err
		}
		if pack != lb {
			res.AllExact = false
		}
	}
	res.Table.AddRow(itoa(trials), fmt.Sprintf("%v", res.AllExact), f2(res.MaxWaste))
	return res, nil
}

// Check verifies §VI's claim on divisible sizes.
func (r *FFDResult) Check() error {
	if !r.AllExact {
		return fmt.Errorf("some FFD packings exceeded the lower bound: %w", ErrShape)
	}
	return nil
}

// packAndBound packs items with FFD and returns (bins used, lower bound).
func packAndBound(items []float64, capacity float64) (int, int, error) {
	pack, err := packing.FirstFitDecreasing(items, capacity)
	if err != nil {
		return 0, 0, err
	}
	lb, err := packing.LowerBound(items, capacity)
	if err != nil {
		return 0, 0, err
	}
	return pack.NumBins(), lb, nil
}

// MM1ValidationResult cross-checks the closed-form M/M/1 model that the
// controller's SLA reduction relies on against the discrete-event queue
// simulator, and confirms that the a·σ allocation rule keeps the realized
// delay inside the SLA.
type MM1ValidationResult struct {
	// ModelRelError is |simulated − closed-form| / closed-form mean delay
	// at the operating point the allocation rule produces.
	ModelRelError float64
	// WithinSLA reports whether the simulated total delay respects d̄.
	WithinSLA bool
	Table     *Table
}

// ValidateMM1Model applies the a·σ rule (with the integer server count a
// deployment would use), simulates the resulting per-server queue, and
// compares the simulated delay against the closed-form prediction at the
// same operating point.
func ValidateMM1Model(seed int64) (*MM1ValidationResult, error) {
	params := queue.SLAParams{Mu: 250, NetworkDelay: 0.02, MaxDelay: 0.25}
	sigma := 5000.0
	x, err := params.RequiredServers(sigma)
	if err != nil {
		return nil, err
	}
	servers := int(math.Ceil(x))
	perServer := sigma / float64(servers)
	analytic, err := queue.MM1Delay(perServer, params.Mu)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	simr, err := queue.SimulateMMc(perServer, params.Mu, 1, 200000, rng)
	if err != nil {
		return nil, err
	}
	rel := math.Abs(simr.MeanDelay-analytic) / analytic
	total := params.NetworkDelay + simr.MeanDelay
	res := &MM1ValidationResult{
		ModelRelError: rel,
		WithinSLA:     total <= params.MaxDelay,
		Table: &Table{
			Title:   "Validation: discrete-event M/M/1 vs closed-form model",
			Columns: []string{"simulated (s)", "closed-form (s)", "rel err", "within SLA"},
		},
	}
	res.Table.AddRow(f4(simr.MeanDelay), f4(analytic), f4(rel), fmt.Sprintf("%v", res.WithinSLA))
	return res, nil
}

// Check requires the simulation to agree with the closed form within
// Monte-Carlo noise and the allocation to stay inside the SLA.
func (r *MM1ValidationResult) Check() error {
	if r.ModelRelError > 0.05 {
		return fmt.Errorf("simulated delay deviates from M/M/1 by %g: %w", r.ModelRelError, ErrShape)
	}
	if !r.WithinSLA {
		return fmt.Errorf("allocation rule violated the SLA in simulation: %w", ErrShape)
	}
	return nil
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dspp/internal/baseline"
	"dspp/internal/core"
	"dspp/internal/game"
	"dspp/internal/queue"
	"dspp/internal/sim"
)

// SoftVsHardResult compares the hard-constraint interior-point MPC
// against the Riccati soft-tracking controller.
type SoftVsHardResult struct {
	Policies   []string
	Cost       []float64
	Violations []int
	StepMicros []float64 // mean wall time per control step
	Table      *Table
}

// AblationSoftController runs the Fig. 4 workload under the hard QP-based
// MPC and the soft LQ-tracking controller: the soft controller is an
// order of magnitude faster per step but trades away the SLA guarantee
// during demand ramps.
func AblationSoftController(seed int64) (*SoftVsHardResult, error) {
	const periods = 24
	const horizon = 5
	inst, demand, prices, err := fig4Scenario(seed, periods+horizon, 2e-5)
	if err != nil {
		return nil, err
	}
	hardCtrl, err := core.NewController(inst, horizon)
	if err != nil {
		return nil, err
	}
	soft, err := baseline.NewSoftTracking(inst, 1.0, horizon)
	if err != nil {
		return nil, err
	}
	res := &SoftVsHardResult{
		Table: &Table{
			Title:   "Ablation: hard-QP MPC vs soft-LQR tracking controller",
			Columns: []string{"controller", "total cost", "SLA violations", "us/step"},
		},
	}
	for _, pol := range []sim.Policy{&sim.MPCPolicy{Ctrl: hardCtrl}, soft} {
		start := time.Now()
		run, err := sim.Run(sim.Config{
			Instance:    inst,
			Policy:      pol,
			DemandTrace: demand,
			PriceTrace:  prices,
			Periods:     periods,
			Horizon:     horizon,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pol.Name(), err)
		}
		micros := float64(time.Since(start).Microseconds()) / float64(periods)
		res.Policies = append(res.Policies, run.PolicyName)
		res.Cost = append(res.Cost, run.TotalCost)
		res.Violations = append(res.Violations, run.SLAViolations)
		res.StepMicros = append(res.StepMicros, micros)
		res.Table.AddRow(run.PolicyName, f2(run.TotalCost), itoa(run.SLAViolations), f1(micros))
	}
	return res, nil
}

// Check verifies that the hard controller never violates the SLA while
// the soft one stays within a sane cost band of it.
func (r *SoftVsHardResult) Check() error {
	if len(r.Policies) != 2 {
		return fmt.Errorf("want 2 policies, got %d: %w", len(r.Policies), ErrShape)
	}
	if r.Violations[0] != 0 {
		return fmt.Errorf("hard MPC violated the SLA %d times: %w", r.Violations[0], ErrShape)
	}
	if r.Cost[1] > 2*r.Cost[0] {
		return fmt.Errorf("soft controller cost %g vs hard %g: tracking badly tuned: %w",
			r.Cost[1], r.Cost[0], ErrShape)
	}
	return nil
}

// RecedingGameResult is the closed-loop competition experiment.
type RecedingGameResult struct {
	Periods     int
	PeakUsage   float64
	Capacity    float64
	TotalCost   float64
	MeanRounds  float64
	AllConverge bool
	Table       *Table
}

// GameRecedingHorizon runs the W-MPC competition (Definition 2) in closed
// loop over a day of sinusoidal demand: three providers share a cheap
// bottleneck DC, re-running Algorithm 2 every period.
func GameRecedingHorizon(seed int64) (*RecedingGameResult, error) {
	const periods = 12
	const window = 3
	rng := rand.New(rand.NewSource(seed))
	providers := make([]*game.DynamicProvider, 3)
	for i := range providers {
		level := 2000 + rng.Float64()*4000
		phase := rng.Float64() * 2 * math.Pi
		demand := make([][]float64, periods+window+1)
		prices := make([][]float64, periods+window+1)
		for k := range demand {
			wave := 1 + 0.4*math.Sin(2*math.Pi*float64(k)/12+phase)
			demand[k] = []float64{level * wave}
			prices[k] = []float64{0.02, 0.12}
		}
		providers[i] = &game.DynamicProvider{
			Name:            fmt.Sprintf("sp%d", i+1),
			SLA:             [][]float64{{0.008 + rng.Float64()*0.01}, {0.008 + rng.Float64()*0.01}},
			ReconfigWeights: []float64{5e-5, 5e-5},
			ServerSize:      float64(int(1) << rng.Intn(2)),
			Demand:          demand,
			Prices:          prices,
		}
	}
	const capacity = 80.0
	res, err := game.RunReceding([]float64{capacity, math.Inf(1)}, providers, game.RecedingConfig{
		Window:  window,
		Periods: periods,
		BestResponse: game.BestResponseConfig{
			Alpha: 80, StepDecay: 1, Epsilon: 0.03, MaxIterations: 600,
		},
	})
	if err != nil {
		return nil, err
	}
	usage, err := res.CapacityUsage(providers, 0)
	if err != nil {
		return nil, err
	}
	out := &RecedingGameResult{
		Periods:     periods,
		Capacity:    capacity,
		TotalCost:   res.Total,
		AllConverge: true,
		Table: &Table{
			Title:   "Extension: closed-loop W-MPC competition (Def. 2)",
			Columns: []string{"period", "bottleneck usage", "rounds", "converged"},
		},
	}
	var roundsSum int
	for k := range usage {
		if usage[k] > out.PeakUsage {
			out.PeakUsage = usage[k]
		}
		roundsSum += res.Rounds[k]
		if !res.Converged[k] {
			out.AllConverge = false
		}
		out.Table.AddRow(itoa(k+1), f1(usage[k]), itoa(res.Rounds[k]), fmt.Sprintf("%v", res.Converged[k]))
	}
	out.MeanRounds = float64(roundsSum) / float64(periods)
	return out, nil
}

// Check verifies the closed loop: shared capacity never violated, every
// period's equilibrium computation converged.
func (r *RecedingGameResult) Check() error {
	if r.PeakUsage > r.Capacity*(1+1e-4) {
		return fmt.Errorf("peak usage %g exceeds capacity %g: %w", r.PeakUsage, r.Capacity, ErrShape)
	}
	if !r.AllConverge {
		return fmt.Errorf("some periods did not reach ε-stability: %w", ErrShape)
	}
	if r.TotalCost <= 0 {
		return fmt.Errorf("total cost %g: %w", r.TotalCost, ErrShape)
	}
	return nil
}

// PoolingResult quantifies the conservatism of the paper's split-demand
// M/M/1 provisioning rule against pooled M/M/c provisioning.
type PoolingResult struct {
	Demand []float64
	Split  []float64 // servers under x = a·σ (rounded up)
	Pooled []int     // servers under Erlang-C
	Table  *Table
}

// ExtensionPooling sweeps demand levels and compares the paper's
// provisioning rule with the statistically multiplexed optimum.
func ExtensionPooling() (*PoolingResult, error) {
	params := queue.SLAParams{Mu: 250, NetworkDelay: 0.02, MaxDelay: 0.25}
	res := &PoolingResult{
		Table: &Table{
			Title:   "Extension: split M/M/1 (paper) vs pooled M/M/c provisioning",
			Columns: []string{"demand(req/s)", "split servers", "pooled servers"},
		},
	}
	for _, sigma := range []float64{100, 500, 2000, 10000, 50000} {
		split, err := params.RequiredServers(sigma)
		if err != nil {
			return nil, err
		}
		pooled, err := params.RequiredServersPooled(sigma)
		if err != nil {
			return nil, err
		}
		res.Demand = append(res.Demand, sigma)
		res.Split = append(res.Split, math.Ceil(split))
		res.Pooled = append(res.Pooled, pooled)
		res.Table.AddRow(f1(sigma), f1(math.Ceil(split)), itoa(pooled))
	}
	return res, nil
}

// Check verifies pooling never needs more servers and that the gap closes
// in relative terms as demand grows (economies of scale).
func (r *PoolingResult) Check() error {
	for i := range r.Demand {
		if float64(r.Pooled[i]) > r.Split[i]+1e-9 {
			return fmt.Errorf("demand %g: pooled %d > split %g: %w",
				r.Demand[i], r.Pooled[i], r.Split[i], ErrShape)
		}
	}
	firstGap := (r.Split[0] - float64(r.Pooled[0])) / r.Split[0]
	lastGap := (r.Split[len(r.Split)-1] - float64(r.Pooled[len(r.Pooled)-1])) / r.Split[len(r.Split)-1]
	if lastGap > firstGap+0.05 {
		return fmt.Errorf("relative pooling gain grew from %g to %g with scale: %w",
			firstGap, lastGap, ErrShape)
	}
	return nil
}

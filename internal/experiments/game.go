package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dspp/internal/game"
	"dspp/internal/parallel"
)

// randomProvider draws a provider with randomized (μ, D, s, c, d̄) as in
// §VII-B: one customer location, two data centers (DC0 is the cheap
// bottleneck, DC1 the expensive overflow).
func randomProvider(rng *rand.Rand, name string, window int) *game.Provider {
	mu := 150 + rng.Float64()*200     // service rate
	dbar := 0.15 + rng.Float64()*0.2  // SLA bound
	lat0 := 0.02 + rng.Float64()*0.03 // latency to DC0
	lat1 := 0.02 + rng.Float64()*0.03 // latency to DC1
	a0 := 1 / (mu - 1/(dbar-lat0))    // eq. 10
	a1 := 1 / (mu - 1/(dbar-lat1))
	size := float64(int(1) << rng.Intn(3)) // s ∈ {1,2,4} (GoGrid-style)
	c := 1e-5 + rng.Float64()*1e-4         // reconfig weight
	level := 2000 + rng.Float64()*6000     // demand
	demand := make([][]float64, window)
	prices := make([][]float64, window)
	for t := 0; t < window; t++ {
		demand[t] = []float64{level * (0.9 + 0.2*rng.Float64())}
		prices[t] = []float64{0.02, 0.12} // DC0 six times cheaper
	}
	return &game.Provider{
		Name:            name,
		SLA:             [][]float64{{a0}, {a1}},
		ReconfigWeights: []float64{c, c},
		ServerSize:      size,
		Demand:          demand,
		Prices:          prices,
	}
}

// gameScenario assembles an n-player scenario with the given bottleneck
// capacity (capacity units) at the cheap DC.
func gameScenario(rng *rand.Rand, n, window int, bottleneck float64) *game.Scenario {
	providers := make([]*game.Provider, n)
	for i := range providers {
		providers[i] = randomProvider(rng, fmt.Sprintf("sp%d", i+1), window)
	}
	return &game.Scenario{
		Capacity:  []float64{bottleneck, math.Inf(1)},
		Providers: providers,
	}
}

// gameBRConfig is the Algorithm 2 configuration used by the game
// experiments: ε = 0.05 per the paper; the quota step is aggressive with
// a diminishing-step schedule (dual subgradient), which reproduces the
// paper's slow, oscillation-damped convergence under tight capacity.
func gameBRConfig(bottleneck float64) game.BestResponseConfig {
	return game.BestResponseConfig{
		Alpha:         100,
		StepDecay:     0.3,
		Epsilon:       0.05,
		MaxIterations: 1000,
	}
}

// Fig7Result holds the convergence-rate sweep of Fig. 7.
type Fig7Result struct {
	Players    []int
	Capacities []float64
	Iterations [][]int // [capacity][players]
	Table      *Table
}

// Fig7GameConvergence reproduces Fig. 7: iterations of Algorithm 2 to an
// approximately stable outcome versus the number of players, for
// bottleneck capacities 100/200/300 at the cheapest DC.
func Fig7GameConvergence(seed int64, maxPlayers int) (*Fig7Result, error) {
	if maxPlayers < 1 {
		maxPlayers = 10
	}
	capacities := []float64{100, 200, 300}
	res := &Fig7Result{
		Capacities: capacities,
		Iterations: make([][]int, len(capacities)),
		Table: &Table{
			Title:   "Fig 7: Algorithm 2 iterations vs number of players",
			Columns: []string{"players", "cap=100", "cap=200", "cap=300"},
		},
	}
	for n := 1; n <= maxPlayers; n++ {
		res.Players = append(res.Players, n)
	}
	// Every (capacity, players, rep) cell draws from its own seeded RNG, so
	// the cells are independent: fan out over the flattened grid and write
	// each mean into its index-addressed slot.
	const seedsPerCell = 3
	for ci := range capacities {
		res.Iterations[ci] = make([]int, maxPlayers)
	}
	cells := len(capacities) * maxPlayers
	err := parallel.ForEach(cells, 0, func(cell int) error {
		ci, n := cell/maxPlayers, cell%maxPlayers+1
		c := capacities[ci]
		total := 0
		for rep := 0; rep < seedsPerCell; rep++ {
			rng := rand.New(rand.NewSource(seed + int64(n)*101 + int64(rep)*977))
			s := gameScenario(rng, n, 3, c)
			br, err := game.BestResponse(s, gameBRConfig(c))
			if err != nil && !errors.Is(err, game.ErrNotConverged) {
				return fmt.Errorf("cap=%g n=%d: %w", c, n, err)
			}
			total += br.Iterations
		}
		res.Iterations[ci][n-1] = total / seedsPerCell
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range res.Players {
		res.Table.AddRow(itoa(n),
			itoa(res.Iterations[0][i]),
			itoa(res.Iterations[1][i]),
			itoa(res.Iterations[2][i]))
	}
	return res, nil
}

// Check verifies Fig. 7's shape: averaged over player counts, tighter
// bottlenecks take at least as many rounds, and many players take more
// rounds than a single player.
func (r *Fig7Result) Check() error {
	mean := func(xs []int) float64 {
		var s float64
		for _, x := range xs {
			s += float64(x)
		}
		return s / float64(len(xs))
	}
	m100, m300 := mean(r.Iterations[0]), mean(r.Iterations[2])
	if m100 < m300 {
		return fmt.Errorf("cap=100 mean %.1f < cap=300 mean %.1f: %w", m100, m300, ErrShape)
	}
	last := len(r.Players) - 1
	if r.Iterations[0][last] <= r.Iterations[0][0] {
		return fmt.Errorf("cap=100: %d players (%d iters) not slower than 1 player (%d): %w",
			r.Players[last], r.Iterations[0][last], r.Iterations[0][0], ErrShape)
	}
	return nil
}

// Fig8Result holds the horizon-vs-iterations sweep of Fig. 8.
type Fig8Result struct {
	Horizons   []int
	Iterations []int
	Table      *Table
}

// Fig8HorizonVsIterations reproduces Fig. 8: a longer prediction horizon
// speeds up the convergence of Algorithm 2 (from ~55 rounds at W=1 down
// to ~33 at W=10 in the paper).
func Fig8HorizonVsIterations(seed int64) (*Fig8Result, error) {
	res := &Fig8Result{
		Table: &Table{
			Title:   "Fig 8: Algorithm 2 iterations vs prediction horizon",
			Columns: []string{"W", "iterations"},
		},
	}
	const players = 5
	const bottleneck = 150.0
	const seedsPerCell = 9
	for w := 1; w <= 10; w++ {
		total := 0
		for rep := 0; rep < seedsPerCell; rep++ {
			rng := rand.New(rand.NewSource(seed + int64(rep)*977))
			s := gameScenario(rng, players, w, bottleneck)
			// Duals sum over the horizon, so the quota step is normalized
			// per period: the averaging across a longer window smooths the
			// dual signal, which is what speeds convergence.
			cfg := gameBRConfig(bottleneck)
			cfg.Alpha = cfg.Alpha * 3 / float64(w)
			br, err := game.BestResponse(s, cfg)
			if err != nil && !errors.Is(err, game.ErrNotConverged) {
				return nil, fmt.Errorf("W=%d: %w", w, err)
			}
			total += br.Iterations
		}
		res.Horizons = append(res.Horizons, w)
		res.Iterations = append(res.Iterations, total/seedsPerCell)
		res.Table.AddRow(itoa(w), itoa(total/seedsPerCell))
	}
	return res, nil
}

// Check verifies Fig. 8's trend robustly: the long-horizon half of the
// sweep converges in no more rounds on average than the short-horizon
// half (individual points are noisy, in the paper too).
func (r *Fig8Result) Check() error {
	half := len(r.Iterations) / 2
	if half == 0 {
		return fmt.Errorf("sweep too short: %w", ErrShape)
	}
	mean := func(xs []int) float64 {
		var s float64
		for _, x := range xs {
			s += float64(x)
		}
		return s / float64(len(xs))
	}
	short := mean(r.Iterations[:half])
	long := mean(r.Iterations[half:])
	if long > short {
		return fmt.Errorf("long-horizon mean %.1f above short-horizon mean %.1f: %w",
			long, short, ErrShape)
	}
	return nil
}

// PoSResult verifies Theorem 1 numerically: the equilibrium reached by
// Algorithm 2 attains (within tolerance) the social optimum.
type PoSResult struct {
	Players []int
	Ratio   []float64 // NE total cost / SWP total cost
	Table   *Table
}

// PriceOfStability measures the efficiency of the computed equilibria for
// 2..maxPlayers providers.
func PriceOfStability(seed int64, maxPlayers int) (*PoSResult, error) {
	if maxPlayers < 2 {
		maxPlayers = 5
	}
	res := &PoSResult{
		Table: &Table{
			Title:   "Theorem 1 check: NE cost / social optimum cost",
			Columns: []string{"players", "NE/SWP"},
		},
	}
	for n := 2; n <= maxPlayers; n++ {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		s := gameScenario(rng, n, 3, 150)
		swp, err := game.SolveSocialWelfare(s, gameBRConfig(150).QP)
		if err != nil {
			return nil, fmt.Errorf("n=%d swp: %w", n, err)
		}
		cfg := gameBRConfig(150)
		cfg.Epsilon = 0.0005
		br, err := game.BestResponse(s, cfg)
		if err != nil && !errors.Is(err, game.ErrNotConverged) {
			return nil, fmt.Errorf("n=%d br: %w", n, err)
		}
		ratio, err := game.EfficiencyRatio(br, swp)
		if err != nil {
			return nil, err
		}
		res.Players = append(res.Players, n)
		res.Ratio = append(res.Ratio, ratio)
		res.Table.AddRow(itoa(n), f4(ratio))
	}
	return res, nil
}

// Check verifies the PoS ≈ 1 prediction. The tolerance (15%) covers the
// ε-stability gap: Algorithm 2 stops at an approximately stable point, so
// individual draws can sit a few percent above the true optimum.
func (r *PoSResult) Check() error {
	for i, ratio := range r.Ratio {
		if ratio > 1.15 || ratio < 0.97 {
			return fmt.Errorf("n=%d: NE/SWP = %g, want ≈ 1: %w", r.Players[i], ratio, ErrShape)
		}
	}
	return nil
}

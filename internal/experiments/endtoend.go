package experiments

import (
	"fmt"
	"math/rand"

	"dspp/internal/baseline"
	"dspp/internal/core"
	"dspp/internal/dispatch"
	"dspp/internal/qp"
	"dspp/internal/sim"
)

// EndToEndResult is the request-level validation: the controller's plan
// for the peak hour replayed request by request.
type EndToEndResult struct {
	PeakDemand float64
	Servers    float64
	Mean, P95  float64
	SLABound   float64
	WithinSLA  float64
	Table      *Table
}

// EndToEndLatency runs the Fig. 4 controller for a day, takes the
// peak-hour allocation, and replays that hour at request granularity
// through per-server M/M/1 queues: the closed-form SLA reasoning must
// survive the discrete-event system.
func EndToEndLatency(seed int64) (*EndToEndResult, error) {
	const periods = 24
	const horizon = 5
	inst, demand, prices, err := fig4Scenario(seed, periods+horizon, 2e-5)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(inst, horizon)
	if err != nil {
		return nil, err
	}
	run, err := sim.Run(sim.Config{
		Instance:    inst,
		Policy:      &sim.MPCPolicy{Ctrl: ctrl},
		DemandTrace: demand,
		PriceTrace:  prices,
		Periods:     periods,
		Horizon:     horizon,
	})
	if err != nil {
		return nil, err
	}
	// Find the peak-demand hour and its allocation.
	peakIdx := 0
	for i, s := range run.Steps {
		if s.Demand[0] > run.Steps[peakIdx].Demand[0] {
			peakIdx = i
		}
	}
	peak := run.Steps[peakIdx]
	rep, err := dispatch.Simulate(inst, peak.State, peak.Demand, dispatch.Config{
		Latency:  [][]float64{{0.020}},
		Mu:       250,
		SLABound: 0.25,
		Requests: 150000,
		Rng:      rand.New(rand.NewSource(seed + 99)),
	})
	if err != nil {
		return nil, err
	}
	res := &EndToEndResult{
		PeakDemand: peak.Demand[0],
		Servers:    peak.ServersByDC[0],
		Mean:       rep.Mean,
		P95:        rep.P95,
		SLABound:   0.25,
		WithinSLA:  rep.WithinSLA,
		Table: &Table{
			Title:   "Validation: peak-hour plan replayed at request level",
			Columns: []string{"peak demand", "servers", "mean lat (s)", "p95 lat (s)", "within SLA"},
		},
	}
	res.Table.AddRow(f1(res.PeakDemand), f1(res.Servers), f4(res.Mean), f4(res.P95), f4(res.WithinSLA))
	return res, nil
}

// Check verifies the controller's peak-hour plan holds up per request:
// mean within the SLA budget and a large majority of requests under it.
func (r *EndToEndResult) Check() error {
	if r.Mean > r.SLABound {
		return fmt.Errorf("request-level mean %g exceeds SLA %g: %w", r.Mean, r.SLABound, ErrShape)
	}
	if r.WithinSLA < 0.80 {
		return fmt.Errorf("only %g of requests within SLA: %w", r.WithinSLA, ErrShape)
	}
	return nil
}

// IntegerResult measures the integrality gap of rounding the continuous
// controller (the paper's §VIII future-work item).
type IntegerResult struct {
	ContinuousCost float64
	IntegerCost    float64
	GapPct         float64
	Violations     int
	Table          *Table
}

// AblationIntegerRounding runs the Fig. 4 day under the continuous MPC
// and the round-up integer MPC and reports the cost gap.
func AblationIntegerRounding(seed int64) (*IntegerResult, error) {
	const periods = 24
	const horizon = 5
	inst, demand, prices, err := fig4Scenario(seed, periods+horizon, 2e-5)
	if err != nil {
		return nil, err
	}
	ctrl, err := core.NewController(inst, horizon)
	if err != nil {
		return nil, err
	}
	contRun, err := sim.Run(sim.Config{
		Instance:    inst,
		Policy:      &sim.MPCPolicy{Ctrl: ctrl},
		DemandTrace: demand,
		PriceTrace:  prices,
		Periods:     periods,
		Horizon:     horizon,
	})
	if err != nil {
		return nil, err
	}
	intPolicy, err := baseline.NewIntegerMPC(inst, horizon, qp.DefaultOptions())
	if err != nil {
		return nil, err
	}
	intRun, err := sim.Run(sim.Config{
		Instance:    inst,
		Policy:      intPolicy,
		DemandTrace: demand,
		PriceTrace:  prices,
		Periods:     periods,
		Horizon:     horizon,
	})
	if err != nil {
		return nil, err
	}
	res := &IntegerResult{
		ContinuousCost: contRun.TotalCost,
		IntegerCost:    intRun.TotalCost,
		Violations:     intRun.SLAViolations,
		Table: &Table{
			Title:   "Ablation: continuous vs integer (round-up) MPC (§VIII)",
			Columns: []string{"controller", "total cost", "SLA violations"},
		},
	}
	res.GapPct = 100 * (intRun.TotalCost - contRun.TotalCost) / contRun.TotalCost
	res.Table.AddRow("continuous", f2(contRun.TotalCost), itoa(contRun.SLAViolations))
	res.Table.AddRow("integer", f2(intRun.TotalCost), itoa(intRun.SLAViolations))
	return res, nil
}

// Check verifies the paper's argument: rounding keeps the SLA and costs
// only a few percent at tens-of-servers scale.
func (r *IntegerResult) Check() error {
	if r.Violations != 0 {
		return fmt.Errorf("integer MPC violated the SLA %d times: %w", r.Violations, ErrShape)
	}
	if r.IntegerCost < r.ContinuousCost*(1-1e-9) {
		return fmt.Errorf("integer cost %g below continuous %g: %w", r.IntegerCost, r.ContinuousCost, ErrShape)
	}
	if r.GapPct > 10 {
		return fmt.Errorf("integrality gap %.1f%% too large: %w", r.GapPct, ErrShape)
	}
	return nil
}

package experiments

import (
	"errors"
	"strings"
	"testing"
)

const testSeed = 2012

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d, want 5:\n%s", len(lines), out)
	}
}

func TestCheckMonotone(t *testing.T) {
	if err := checkMonotone("x", []float64{3, 2, 2, 1}, -1, 0.01); err != nil {
		t.Errorf("decreasing err = %v", err)
	}
	if err := checkMonotone("x", []float64{1, 5}, -1, 0.01); !errors.Is(err, ErrShape) {
		t.Errorf("rise err = %v", err)
	}
	if err := checkMonotone("x", []float64{1, 2, 3}, 1, 0.01); err != nil {
		t.Errorf("increasing err = %v", err)
	}
	if err := checkMonotone("x", []float64{3, 1}, 1, 0.01); !errors.Is(err, ErrShape) {
		t.Errorf("fall err = %v", err)
	}
	// Tolerance absorbs small wobble.
	if err := checkMonotone("x", []float64{100, 100.5, 99}, -1, 0.01); err != nil {
		t.Errorf("tolerant err = %v", err)
	}
}

func TestFig3(t *testing.T) {
	r := Fig3Prices()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if len(r.Hours) != 24 || len(r.Regions) != 4 {
		t.Errorf("dims: hours=%d regions=%d", len(r.Hours), len(r.Regions))
	}
	if len(r.Table.Rows) != 24 {
		t.Errorf("table rows = %d", len(r.Table.Rows))
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4DemandTracking(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if len(r.Servers) != 24 {
		t.Errorf("servers series = %d points", len(r.Servers))
	}
	// Peak allocation should land in the figure's ~60-110 server band.
	peak := 0.0
	for _, s := range r.Servers {
		if s > peak {
			peak = s
		}
	}
	if peak < 50 || peak > 150 {
		t.Errorf("peak servers = %g, want 50-150 (paper ~90)", peak)
	}
}

func TestFig5(t *testing.T) {
	r, err := Fig5PriceShifting()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	// Houston gains exactly what the others shed (total tracks demand).
	for h := range r.Hours {
		total := r.Servers[0][h] + r.Servers[1][h] + r.Servers[2][h]
		if total < 40 {
			t.Errorf("hour %d: total %g suspiciously low", h, total)
		}
	}
}

func TestFig6(t *testing.T) {
	r, err := Fig6HorizonSmoothing(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.MaxStep[len(r.MaxStep)-1] >= r.MaxStep[0]*0.75 {
		t.Errorf("K=30 max step %g not clearly below K=1 %g", r.MaxStep[len(r.MaxStep)-1], r.MaxStep[0])
	}
}

func TestFig7Small(t *testing.T) {
	// Smaller sweep than the bench (players ≤ 5) to keep tests fast.
	r, err := Fig7GameConvergence(testSeed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Players) != 5 || len(r.Iterations) != 3 {
		t.Fatalf("dims: players=%d caps=%d", len(r.Players), len(r.Iterations))
	}
	for ci := range r.Iterations {
		for _, it := range r.Iterations[ci] {
			if it < 1 {
				t.Errorf("cap idx %d: nonpositive iterations %d", ci, it)
			}
		}
	}
}

func TestFig8(t *testing.T) {
	r, err := Fig8HorizonVsIterations(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFig9(t *testing.T) {
	r, err := Fig9HorizonVsCost(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckFig9(); err != nil {
		t.Fatal(err)
	}
	if len(r.Horizons) != 12 {
		t.Errorf("horizons = %d", len(r.Horizons))
	}
}

func TestFig10(t *testing.T) {
	r, err := Fig10ConstantHorizon()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckFig10(); err != nil {
		t.Fatal(err)
	}
	// The improvement from W=1 to W=10 should be substantial (>20%).
	if r.Cost[len(r.Cost)-1] > 0.8*r.Cost[0] {
		t.Errorf("W=10 cost %g vs W=1 %g: improvement too small", r.Cost[len(r.Cost)-1], r.Cost[0])
	}
}

func TestPriceOfStability(t *testing.T) {
	r, err := PriceOfStability(testSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationReconfigWeight(t *testing.T) {
	r, err := AblationReconfigWeight(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	// Cost should rise as movement is suppressed (trade-off visible).
	if r.Cost[len(r.Cost)-1] <= r.Cost[0] {
		t.Errorf("cost did not rise with c: %v", r.Cost)
	}
}

func TestAblationBaselines(t *testing.T) {
	r, err := AblationBaselines(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 5 {
		t.Errorf("policies = %v", r.Policies)
	}
}

func TestAblationPercentileSLA(t *testing.T) {
	r, err := AblationPercentileSLA()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationReservationRatio(t *testing.T) {
	r, err := AblationReservationRatio(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationGameStepSize(t *testing.T) {
	r, err := AblationGameStepSize(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationFFDExactness(t *testing.T) {
	r, err := AblationFFDExactness(testSeed, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMM1Model(t *testing.T) {
	r, err := ValidateMM1Model(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	if c := correlation([]float64{1, 2, 3}, []float64{2, 4, 6}); c < 0.999 {
		t.Errorf("perfect correlation = %g", c)
	}
	if c := correlation([]float64{1, 2, 3}, []float64{3, 2, 1}); c > -0.999 {
		t.Errorf("perfect anticorrelation = %g", c)
	}
	if c := correlation([]float64{1, 1}, []float64{2, 3}); c != 0 {
		t.Errorf("constant series correlation = %g", c)
	}
	if c := correlation([]float64{1}, []float64{1, 2}); c != 0 {
		t.Errorf("length mismatch correlation = %g", c)
	}
}

func TestAblationSoftController(t *testing.T) {
	r, err := AblationSoftController(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.Policies[1] != "soft-lqr" {
		t.Errorf("policies = %v", r.Policies)
	}
}

func TestGameRecedingHorizon(t *testing.T) {
	r, err := GameRecedingHorizon(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.MeanRounds < 1 {
		t.Errorf("mean rounds = %g", r.MeanRounds)
	}
}

func TestExtensionPooling(t *testing.T) {
	r, err := ExtensionPooling()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if len(r.Demand) != 5 {
		t.Errorf("rows = %d", len(r.Demand))
	}
}

func TestEndToEndLatency(t *testing.T) {
	r, err := EndToEndLatency(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.P95 < r.Mean {
		t.Errorf("p95 %g below mean %g", r.P95, r.Mean)
	}
}

func TestAblationIntegerRounding(t *testing.T) {
	r, err := AblationIntegerRounding(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.GapPct < 0 {
		t.Errorf("negative gap %g", r.GapPct)
	}
}

func TestPriceOfAnarchy(t *testing.T) {
	r, err := PriceOfAnarchy(testSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 4 {
		t.Errorf("rows = %d", len(r.Table.Rows))
	}
}

func TestPredictorShootout(t *testing.T) {
	r, err := PredictorShootout(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 6 {
		t.Errorf("predictors = %v", r.Names)
	}
}

func TestExtensionSpotPricing(t *testing.T) {
	r, err := ExtensionSpotPricing(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.SavingPct <= 0 || r.SavingPct >= 100 {
		t.Errorf("saving = %g%%", r.SavingPct)
	}
}

func TestOutageRecovery(t *testing.T) {
	r, err := OutageRecovery(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.Fault.DegradedSteps == 0 || r.Fault.ShedDemand <= 0 {
		t.Errorf("degraded=%d shed=%g, want a degraded, shedding run",
			r.Fault.DegradedSteps, r.Fault.ShedDemand)
	}
	// The no-fault companion run must be clean end to end.
	if got := r.NoFault.DegradationSummary(); got != "mpc-w6: all 30 steps clean" {
		t.Errorf("no-fault summary = %q", got)
	}
}

package experiments

import (
	"fmt"
	"math"

	"dspp/internal/core"
	"dspp/internal/topology"
)

// SupportResult tabulates the SLA-sparsity pruning on a geo-realistic US
// topology as the latency bound d̄ tightens: how many of the L·V
// (location, DC) pairs survive the network-latency + M/M/1 admission test
// and therefore carry horizon-QP variables. It is the quantitative backdrop
// for the pruned problem construction: every per-period variable and
// constraint the pruning removes is removed from every step of every MPC
// and best-response solve downstream.
type SupportResult struct {
	Table *Table
	// DelaysMs holds the swept SLA bounds in milliseconds.
	DelaysMs []float64
	// Stats[i] is the pruning summary at DelaysMs[i]. Entries where the
	// bound is so tight that some location has no feasible DC at all carry
	// Feasible=false (the instance is rejected outright rather than pruned).
	Stats    []core.SupportStats
	Feasible []bool
}

// SupportPruning sweeps the SLA latency bound over a fixed 4-DC, 24-metro
// great-circle topology and reports the surviving pair support per bound.
// The geography is deterministic, so the experiment takes no seed.
func SupportPruning() (*SupportResult, error) {
	cities := topology.USCities()
	dcCities := []topology.City{}
	for _, name := range []string{"San Jose", "Dallas", "Atlanta", "Chicago"} {
		c, ok := topology.CityByName(name)
		if !ok {
			return nil, fmt.Errorf("support: unknown DC city %q", name)
		}
		dcCities = append(dcCities, c)
	}
	access := make([]topology.City, 0, 24)
	for _, c := range cities {
		isDC := false
		for _, dc := range dcCities {
			if dc.Name == c.Name {
				isDC = true
				break
			}
		}
		if !isDC && len(access) < 24 {
			access = append(access, c)
		}
	}
	net, err := topology.BuildGeo(dcCities, access, 0.002)
	if err != nil {
		return nil, err
	}
	latency := net.LatencyMatrix()

	res := &SupportResult{
		Table: &Table{
			Title:   "SLA-sparsity pruning: feasible (location, DC) support vs latency bound",
			Columns: []string{"dbar_ms", "pairs", "feasible", "pruned_%", "min_dcs", "max_dcs", "qp_vars_W4"},
		},
	}
	for _, dbarMs := range []float64{12, 18, 25, 40, 60, 100} {
		sla, err := core.SLAMatrix(latency, core.SLAConfig{Mu: 30, MaxDelay: dbarMs / 1000})
		if err != nil {
			return nil, err
		}
		weights := make([]float64, len(dcCities))
		caps := make([]float64, len(dcCities))
		for l := range weights {
			weights[l] = 1e-4
			caps[l] = math.Inf(1)
		}
		res.DelaysMs = append(res.DelaysMs, dbarMs)
		inst, err := core.NewInstance(core.Config{SLA: sla, ReconfigWeights: weights, Capacities: caps})
		if err != nil {
			// Some location lost its last feasible DC: the bound rejects the
			// whole instance, which the table reports rather than hides.
			res.Stats = append(res.Stats, core.SupportStats{})
			res.Feasible = append(res.Feasible, false)
			res.Table.AddRow(f1(dbarMs), itoa(len(dcCities)*len(access)), "-", "-", "0", "-", "-")
			continue
		}
		st := inst.Support()
		res.Stats = append(res.Stats, st)
		res.Feasible = append(res.Feasible, true)
		res.Table.AddRow(f1(dbarMs), itoa(st.TotalPairs), itoa(st.FeasiblePairs),
			f1(100*st.PrunedFraction), itoa(st.MinDCsPerLocation), itoa(st.MaxDCsPerLocation),
			itoa(4*st.FeasiblePairs))
	}
	return res, nil
}

// Check verifies the qualitative shape: the support grows monotonically
// with the latency bound, the loosest bound admits every pair, and at least
// one swept bound actually prunes (otherwise the sweep says nothing).
func (r *SupportResult) Check() error {
	prev := -1
	pruned := false
	for i, st := range r.Stats {
		if !r.Feasible[i] {
			if prev > 0 {
				return fmt.Errorf("bound %.0fms infeasible after a feasible tighter bound: %w", r.DelaysMs[i], ErrShape)
			}
			continue
		}
		if st.FeasiblePairs < prev {
			return fmt.Errorf("support shrank from %d to %d pairs as d̄ grew to %.0fms: %w",
				prev, st.FeasiblePairs, r.DelaysMs[i], ErrShape)
		}
		prev = st.FeasiblePairs
		if st.PrunedPairs > 0 {
			pruned = true
		}
		if st.MinDCsPerLocation < 1 {
			return fmt.Errorf("feasible instance with an uncovered location at %.0fms: %w", r.DelaysMs[i], ErrShape)
		}
	}
	if len(r.Stats) > 0 {
		last := r.Stats[len(r.Stats)-1]
		if !r.Feasible[len(r.Stats)-1] || last.PrunedPairs != 0 {
			return fmt.Errorf("loosest bound still prunes %d pairs: %w", last.PrunedPairs, ErrShape)
		}
	}
	if !pruned {
		return fmt.Errorf("no swept bound pruned any pair: %w", ErrShape)
	}
	return nil
}

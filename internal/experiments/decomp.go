package experiments

import (
	"context"
	"fmt"

	"dspp/internal/decomp"
)

// DecompScalingResult is the shard-scaling curve of the geographic
// decomposition (ROADMAP item 1): per case, the coordinated sharded solve
// against the monolithic reference on the same continental scenario.
type DecompScalingResult struct {
	Table   *Table
	Records []decomp.ScalingRecord
}

// DecompScaling measures the scaling curve. The smoke set (full=false)
// stays at sizes where the monolithic reference is seconds; full adds the
// continental n≥1000 sizes (the monolithic n=1000 reference takes
// minutes) and an n=2000 frontier only the decomposition touches.
func DecompScaling(ctx context.Context, full bool) (*DecompScalingResult, error) {
	records, err := decomp.RunScaling(ctx, decomp.DefaultScalingCases(full))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Decomposition shard scaling: coordinated region QPs vs monolithic",
		Columns: []string{"case", "locs", "DCs", "shards", "shared", "rounds",
			"decomp s", "mono s", "speedup", "gap %"},
	}
	for _, r := range records {
		gap, speed := "n/a", "n/a"
		if r.CostGap >= -1 && r.MonoObjective != 0 {
			gap = fmt.Sprintf("%.3f", 100*r.CostGap)
		}
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.2f", r.Speedup)
		}
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Locations), fmt.Sprintf("%d", r.DCs),
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.SharedDCs),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%.3f", r.DecompSolveSec), fmt.Sprintf("%.3f", r.MonoSolveSec),
			speed, gap)
	}
	return &DecompScalingResult{Table: t, Records: records}, nil
}

// Check verifies the scaling story: every measured point converged with a
// cost gap within 1% of the monolithic optimum, and no point regressed
// below the optimum (which would mean an infeasible split).
func (r *DecompScalingResult) Check() error {
	for _, rec := range r.Records {
		if !rec.Converged {
			return fmt.Errorf("%w: %s did not converge in budget", ErrShape, rec.Name)
		}
		if rec.MonoObjective == 0 {
			continue // frontier point: no reference at this size
		}
		if rec.CostGap > 0.01 {
			return fmt.Errorf("%w: %s cost gap %.4f exceeds 1%%", ErrShape, rec.Name, rec.CostGap)
		}
		if rec.CostGap < -1e-4 {
			return fmt.Errorf("%w: %s decomposed objective %.6g below the monolithic optimum %.6g",
				ErrShape, rec.Name, rec.DecompObjective, rec.MonoObjective)
		}
	}
	return nil
}

package experiments

import (
	"context"
	"fmt"

	"dspp/internal/decomp"
)

// DecompScalingResult is the shard-scaling curve of the geographic
// decomposition (ROADMAP item 1): per case, the coordinated sharded solve
// against the monolithic reference on the same continental scenario.
type DecompScalingResult struct {
	Table   *Table
	Records []decomp.ScalingRecord
}

// DecompScaling measures the scaling curve. The smoke set (full=false)
// stays at sizes where the monolithic reference is seconds; full adds the
// continental n≥1000 sizes (the monolithic n=1000 reference takes
// minutes) and an n=2000 frontier only the decomposition touches.
func DecompScaling(ctx context.Context, full bool) (*DecompScalingResult, error) {
	records, err := decomp.RunScaling(ctx, decomp.DefaultScalingCases(full))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Decomposition shard scaling: coordinated region QPs vs monolithic",
		Columns: []string{"case", "locs", "DCs", "shards", "shared", "rounds",
			"decomp s", "mono s", "speedup", "gap %"},
	}
	for _, r := range records {
		gap, speed := "n/a", "n/a"
		if r.CostGap >= -1 && r.MonoObjective != 0 {
			gap = fmt.Sprintf("%.3f", 100*r.CostGap)
		}
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.2f", r.Speedup)
		}
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Locations), fmt.Sprintf("%d", r.DCs),
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.SharedDCs),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%.3f", r.DecompSolveSec), fmt.Sprintf("%.3f", r.MonoSolveSec),
			speed, gap)
	}
	return &DecompScalingResult{Table: t, Records: records}, nil
}

// DecompIncrementalResult is the incremental-coordination curve: per
// case, the cold coordinated solve with dirty-shard scheduling and the
// rank-k fast path on, plus a quiet MPC tail measuring the settled
// per-period cost. baseline, when non-nil, supplies the BENCH_4
// monolithic references and pre-incremental decomp times.
type DecompIncrementalResult struct {
	Table   *Table
	Records []decomp.IncrementalRecord
}

// DecompIncremental measures the incremental curve on the BENCH_4
// geometries. The smoke set (full=false) backs the CI steady-state
// guard; full adds the continental sizes for BENCH_5.json.
func DecompIncremental(ctx context.Context, full bool, baseline []decomp.ScalingRecord) (*DecompIncrementalResult, error) {
	records, err := decomp.RunIncremental(ctx, decomp.DefaultIncrementalCases(full), baseline)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Incremental coordination: dirty-shard scheduling + rank-k quota re-solves",
		Columns: []string{"case", "shards", "rounds", "solves", "skipped", "fast",
			"decomp s", "speedup", "gap %", "vs B4", "steady dirty", "steady s"},
	}
	for _, r := range records {
		gap, speed, vsB4, sd, ss := "n/a", "n/a", "n/a", "n/a", "n/a"
		if r.MonoObjective != 0 {
			gap = fmt.Sprintf("%.3f", 100*r.CostGap)
		}
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.2f", r.Speedup)
		}
		if r.SpeedupVsBench4 > 0 {
			vsB4 = fmt.Sprintf("%.2f", r.SpeedupVsBench4)
		}
		if r.SteadyPeriods > 0 {
			sd = fmt.Sprintf("%.3f", r.SteadyDirtyFrac)
			ss = fmt.Sprintf("%.3f", r.SteadySecPeriod)
		}
		name := r.Name
		if r.Bypassed {
			name += " (bypass)"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.ShardSolves), fmt.Sprintf("%d", r.SkippedShards),
			fmt.Sprintf("%d", r.FastResolves),
			fmt.Sprintf("%.3f", r.DecompSolveSec), speed, gap, vsB4, sd, ss)
	}
	return &DecompIncrementalResult{Table: t, Records: records}, nil
}

// Check verifies the incremental story: every point converged inside the
// 1% gap band (and not below the optimum), no referenced point ran
// slower than monolithic, the incremental machinery actually fired
// somewhere (skipped shard-rounds and rank-k fast resolves), and every
// guard-grade quiet tail (decomp.SteadyGuardPeriods or longer) settled
// to re-solving under half the fleet per period.
func (r *DecompIncrementalResult) Check() error {
	skipped, fast := 0, 0
	for _, rec := range r.Records {
		if !rec.Converged {
			return fmt.Errorf("%w: %s did not converge in budget", ErrShape, rec.Name)
		}
		skipped += rec.SkippedShards + rec.SteadySkipped
		fast += rec.FastResolves
		if rec.MonoObjective != 0 {
			if rec.CostGap > 0.01 {
				return fmt.Errorf("%w: %s cost gap %.4f exceeds 1%%", ErrShape, rec.Name, rec.CostGap)
			}
			if rec.CostGap < -1e-4 {
				return fmt.Errorf("%w: %s decomposed objective %.6g below the monolithic optimum %.6g",
					ErrShape, rec.Name, rec.DecompObjective, rec.MonoObjective)
			}
			if rec.Speedup < 1 {
				return fmt.Errorf("%w: %s ran %.2fx vs monolithic — slower than the bypass guarantee",
					ErrShape, rec.Name, rec.Speedup)
			}
		}
		if rec.SteadyPeriods >= decomp.SteadyGuardPeriods && rec.SteadyDirtyFrac >= 0.5 {
			return fmt.Errorf("%w: %s steady-state dirty fraction %.3f ≥ 0.5 — the quiet loop is not settling",
				ErrShape, rec.Name, rec.SteadyDirtyFrac)
		}
	}
	if skipped == 0 {
		return fmt.Errorf("%w: dirty-shard scheduling never skipped a shard-round", ErrShape)
	}
	if fast == 0 {
		return fmt.Errorf("%w: the rank-k capacity fast path never fired", ErrShape)
	}
	return nil
}

// Check verifies the scaling story: every measured point converged with a
// cost gap within 1% of the monolithic optimum, and no point regressed
// below the optimum (which would mean an infeasible split).
func (r *DecompScalingResult) Check() error {
	for _, rec := range r.Records {
		if !rec.Converged {
			return fmt.Errorf("%w: %s did not converge in budget", ErrShape, rec.Name)
		}
		if rec.MonoObjective == 0 {
			continue // frontier point: no reference at this size
		}
		if rec.CostGap > 0.01 {
			return fmt.Errorf("%w: %s cost gap %.4f exceeds 1%%", ErrShape, rec.Name, rec.CostGap)
		}
		if rec.CostGap < -1e-4 {
			return fmt.Errorf("%w: %s decomposed objective %.6g below the monolithic optimum %.6g",
				ErrShape, rec.Name, rec.DecompObjective, rec.MonoObjective)
		}
	}
	return nil
}

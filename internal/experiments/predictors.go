package experiments

import (
	"fmt"
	"math"

	"dspp/internal/core"
	"dspp/internal/predict"
	"dspp/internal/sim"
)

// PredictorShootoutResult compares forecasting schemes on the paper's
// diurnal workload: forecast quality (via the monitoring module's online
// scorecard) and its downstream effect on controller cost and SLA.
type PredictorShootoutResult struct {
	Names      []string
	RMSE       []float64
	Bias       []float64
	Cost       []float64
	Violations []int
	Table      *Table
}

// PredictorShootout runs the same MPC controller over the same realized
// diurnal trace under different demand predictors. The paper's framework
// is explicitly predictor-agnostic (§III); this experiment quantifies how
// much the choice matters.
func PredictorShootout(seed int64) (*PredictorShootoutResult, error) {
	const periods = 72 // three days: seasonal predictors need history
	const horizon = 3
	predictors := []struct {
		name string
		p    predict.Predictor
	}{
		{"perfect", nil},
		{"persistence", predict.Persistence{}},
		{"moving-avg-6", predict.MovingAverage{Window: 6}},
		{"seasonal-24", predict.SeasonalNaive{Season: 24}},
		{"ar2", predict.AR{P: 2}},
		{"holt-winters", predict.HoltWinters{Season: 24}},
	}
	res := &PredictorShootoutResult{
		Table: &Table{
			Title:   "Extension: predictor shootout on the diurnal workload",
			Columns: []string{"predictor", "RMSE", "bias", "total cost", "SLA violations"},
		},
	}
	for _, pd := range predictors {
		// Fresh instance/trace per predictor (same seed → same trace).
		inst, demand, prices, err := fig4Scenario(seed, periods+horizon, 2e-5)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewController(inst, horizon)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(sim.Config{
			Instance:        inst,
			Policy:          &sim.MPCPolicy{Ctrl: ctrl},
			DemandTrace:     demand,
			PriceTrace:      prices,
			Periods:         periods,
			Horizon:         horizon,
			DemandPredictor: pd.p,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pd.name, err)
		}
		fa := run.ForecastAccuracy[0]
		res.Names = append(res.Names, pd.name)
		res.RMSE = append(res.RMSE, fa.RMSE)
		res.Bias = append(res.Bias, fa.Bias)
		res.Cost = append(res.Cost, run.TotalCost)
		res.Violations = append(res.Violations, run.SLAViolations)
		res.Table.AddRow(pd.name, f1(fa.RMSE), f1(fa.Bias), f2(run.TotalCost), itoa(run.SLAViolations))
	}
	return res, nil
}

// Check verifies the expected ordering: the oracle is error-free and
// violation-free; the seasonal predictors beat persistence on RMSE (the
// trace is diurnal); every predictor's violation count is bounded by
// persistence's (the weakest structural model).
func (r *PredictorShootoutResult) Check() error {
	idx := func(name string) int {
		for i, n := range r.Names {
			if n == name {
				return i
			}
		}
		return -1
	}
	perfect := idx("perfect")
	persistence := idx("persistence")
	seasonal := idx("seasonal-24")
	hw := idx("holt-winters")
	if perfect < 0 || persistence < 0 || seasonal < 0 || hw < 0 {
		return fmt.Errorf("missing predictors in %v: %w", r.Names, ErrShape)
	}
	if r.RMSE[perfect] != 0 || r.Violations[perfect] != 0 {
		return fmt.Errorf("oracle imperfect (rmse %g, viol %d): %w",
			r.RMSE[perfect], r.Violations[perfect], ErrShape)
	}
	if r.RMSE[seasonal] >= r.RMSE[persistence] {
		return fmt.Errorf("seasonal RMSE %g not below persistence %g on diurnal data: %w",
			r.RMSE[seasonal], r.RMSE[persistence], ErrShape)
	}
	if r.RMSE[hw] >= r.RMSE[persistence] {
		return fmt.Errorf("holt-winters RMSE %g not below persistence %g: %w",
			r.RMSE[hw], r.RMSE[persistence], ErrShape)
	}
	// Every imperfect predictor suffers violations under the zero-margin
	// SLA check (Poisson noise makes every upward surprise count) — the
	// very effect the §IV-B reservation cushion exists to absorb.
	for i, n := range r.Names {
		if i == perfect {
			continue
		}
		if r.Violations[i] == 0 {
			return fmt.Errorf("%s shows no violations; scenario too easy: %w", n, ErrShape)
		}
		if math.IsNaN(r.RMSE[i]) || r.RMSE[i] <= 0 {
			return fmt.Errorf("%s RMSE %g: %w", n, r.RMSE[i], ErrShape)
		}
	}
	return nil
}

// Package experiments defines one reproducible experiment per figure of
// the paper's evaluation (§VII, Figs. 3–10) plus the ablations listed in
// DESIGN.md. Each experiment builds its scenario from the substrate
// packages, runs the controller/game, and returns structured series
// together with a rendered text table, so that cmd/experiments and the
// benchmark harness share one implementation.
package experiments

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrShape is returned by the Check* helpers when a reproduced series does
// not exhibit the qualitative shape reported in the paper.
var ErrShape = errors.New("experiments: shape check failed")

// Table is a rendered experiment output: a title, column headers, and
// string-formatted rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(x float64) string { return strconv.FormatFloat(x, 'f', 1, 64) }

// f2 formats a float with two decimals.
func f2(x float64) string { return strconv.FormatFloat(x, 'f', 2, 64) }

// f4 formats a float with four decimals.
func f4(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }

// itoa is a short alias.
func itoa(i int) string { return strconv.Itoa(i) }

// checkMonotone verifies a series is non-increasing (dir < 0) or
// non-decreasing (dir > 0) within a relative tolerance.
func checkMonotone(name string, ys []float64, dir int, tol float64) error {
	for i := 1; i < len(ys); i++ {
		diff := ys[i] - ys[i-1]
		scale := tol * (1 + abs(ys[i-1]))
		if dir < 0 && diff > scale {
			return fmt.Errorf("%s: rose from %g to %g at index %d: %w", name, ys[i-1], ys[i], i, ErrShape)
		}
		if dir > 0 && diff < -scale {
			return fmt.Errorf("%s: fell from %g to %g at index %d: %w", name, ys[i-1], ys[i], i, ErrShape)
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

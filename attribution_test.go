package dspp_test

// End-to-end provenance acceptance: a 100-period continental run under
// the decomposed controller must leave a complete attribution trail —
// per-period cost components that sum to the reported period cost,
// /statusz rollups that agree with the ring, and a trace from which the
// coordination critical path reconstructs.

import (
	"bytes"
	"math"
	"testing"

	"dspp"
	"dspp/internal/core"
)

func provRelErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 1 {
		return d / m
	}
	return d
}

func TestContinentalAttributionEndToEnd(t *testing.T) {
	const (
		locations = 120
		dcsites   = 12
		periods   = 100
		horizon   = 2
	)
	scn, err := dspp.NewContinentalScenario(dspp.ContinentalScenarioConfig{
		Locations: locations,
		DCSites:   dcsites,
		Seed:      42,
		Horizon:   horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := scn.Inst

	// Diurnal demand (peak = the scenario's sizing point, so the run stays
	// feasible) keeps the placement moving so churn and reconfiguration
	// attribution are exercised, not just the steady state.
	steps := periods + horizon + 1
	demandTrace := make([][]float64, steps)
	priceTrace := make([][]float64, steps)
	const amp = 0.3
	for k := range demandTrace {
		demandTrace[k] = make([]float64, locations)
		f := (1 - amp) + amp*math.Sin(2*math.Pi*float64(k)/24)
		for v := range demandTrace[k] {
			demandTrace[k][v] = scn.Demand[0][v] * f
		}
		priceTrace[k] = append([]float64(nil), scn.Prices[0]...)
	}

	var trace bytes.Buffer
	hub := dspp.NewTelemetry(dspp.WithTraceWriter(&trace))
	ctrl, err := dspp.NewDecompController(inst, horizon, dspp.DecompOptions{
		MaxShardSize: 30,
		Telemetry:    hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Partition() == nil {
		t.Fatal("instance below decomposition threshold; test must exercise the coordinated path")
	}
	res, err := dspp.Simulate(dspp.SimConfig{
		Instance:    inst,
		Policy:      ctrl,
		DemandTrace: demandTrace,
		PriceTrace:  priceTrace,
		Periods:     periods,
		Horizon:     horizon,
		Telemetry:   hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != periods {
		t.Fatalf("ran %d periods, want %d", len(res.Steps), periods)
	}

	// Every period of the run has a record, and the decomposition holds:
	// resource + bandwidth + reconfig + shed = the period's reported cost
	// (plus imputed shed) within 1e-9 relative.
	recs := hub.Attribution().Ring().Snapshot()
	if len(recs) != periods {
		t.Fatalf("ring retains %d records, want %d", len(recs), periods)
	}
	sawShard := false
	for i, a := range recs {
		step := res.Steps[i]
		if a.Period != step.Period {
			t.Fatalf("record %d period %d, want %d", i, a.Period, step.Period)
		}
		if e := provRelErr(a.ComponentSum(), a.Total); e > 1e-9 {
			t.Fatalf("period %d: components %g != total %g (rel %g)",
				a.Period, a.ComponentSum(), a.Total, e)
		}
		want := step.Cost.Total() + step.Degradation.ShedDemand*core.DefaultShedPenalty
		if e := provRelErr(a.Total, want); e > 1e-9 {
			t.Fatalf("period %d: total %g, reported cost %g (rel %g)", a.Period, a.Total, want, e)
		}
		if a.Churn < 0 || a.Churn > 1 {
			t.Fatalf("period %d: churn %g", a.Period, a.Churn)
		}
		if len(a.DCs) != dcsites {
			t.Fatalf("period %d: %d dc rows, want %d", a.Period, len(a.DCs), dcsites)
		}
		for _, row := range a.DCs {
			if row.Dual < 0 || math.IsNaN(row.Dual) || math.IsInf(row.Quota, 0) {
				t.Fatalf("period %d dc %d: dual %g quota %g", a.Period, row.DC, row.Dual, row.Quota)
			}
			if row.Shard >= 0 {
				sawShard = true
			}
		}
	}
	if !sawShard {
		t.Fatal("no record carries the coordinated quota/shard view")
	}

	// /statusz serves the same numbers the ring holds.
	page := dspp.Statusz(hub, 0)
	if page.Periods != periods || len(page.Recent) != periods {
		t.Fatalf("statusz periods=%d recent=%d", page.Periods, len(page.Recent))
	}
	var total float64
	for _, a := range recs {
		total += a.Total
	}
	if e := provRelErr(page.Rollup.Total, total); e > 1e-9 {
		t.Fatalf("statusz rollup total %g, ring sums to %g", page.Rollup.Total, total)
	}
	if e := provRelErr(page.Rollup.Total, res.TotalCost+res.ShedDemand*core.DefaultShedPenalty); e > 1e-9 {
		t.Fatalf("statusz rollup total %g, run total %g", page.Rollup.Total, res.TotalCost)
	}

	// The trace reconstructs a critical path for at least one coordination
	// round (the acceptance bar for dsppsim trace-summary).
	events, err := dspp.ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	paths := dspp.CriticalPathsFromTrace(events)
	if len(paths) == 0 {
		t.Fatal("no coordination critical path in trace")
	}
	for _, p := range paths {
		if p.CriticalUS <= 0 || p.CriticalUS > p.DurUS || len(p.Steps) == 0 {
			t.Fatalf("degenerate path %+v", p)
		}
	}
	table := dspp.FormatCriticalPaths(paths, 3)
	if table == "" {
		t.Fatal("critical-path table empty")
	}
}

package dspp

import (
	"context"

	"dspp/internal/decomp"
	"dspp/internal/topology"
)

// Continental-scale geographic decomposition (ROADMAP item 1): the
// location–DC support graph of a geo-realistic instance splits into
// weakly coupled regions, so one monolithic horizon QP is replaced by
// per-region QPs plus a dual-price coordination loop that re-divides the
// capacity of DCs shared between regions. DecompController is the
// drop-in continental-scale replacement for Controller; below roughly a
// thousand locations the monolithic path is usually faster.
type (
	// DecompOptions configures the decomposition layer (shard size,
	// coordination rounds, tolerance, parallelism, telemetry).
	DecompOptions = decomp.Options
	// DecompController is the decomposed MPC controller.
	DecompController = decomp.Controller
	// DecompControllerOption customizes a DecompController.
	DecompControllerOption = decomp.ControllerOption
	// Partition is a geographic sharding of an instance's support graph.
	Partition = decomp.Partition
	// PartitionShard is one region: its locations plus every DC any of
	// them can reach within the SLA.
	PartitionShard = decomp.Shard
	// PartitionStats summarizes a partition for reports.
	PartitionStats = decomp.Stats
	// DecompSolver runs coordinated sharded horizon solves directly
	// (DecompController wraps it with the MPC loop and fallback ladder).
	DecompSolver = decomp.Solver
	// DecompSolution is one coordinated horizon solve.
	DecompSolution = decomp.Solution

	// ContinentalConfig parameterizes the continental topology generator.
	ContinentalConfig = topology.ContinentalConfig
	// ContinentalNetwork is a generated continental topology.
	ContinentalNetwork = topology.ContinentalNetwork

	// ContinentalScenario is a ready-to-solve synthetic continental
	// benchmark instance.
	ContinentalScenario = decomp.Scenario
	// ContinentalScenarioConfig sizes a ContinentalScenario.
	ContinentalScenarioConfig = decomp.ScenarioConfig
	// ScalingCase is one point of the decomposition shard-scaling curve.
	ScalingCase = decomp.ScalingCase
	// ScalingRecord is one measured scaling point.
	ScalingRecord = decomp.ScalingRecord
)

// Decomposition sentinel errors.
var (
	// ErrDecompConfig flags invalid decomposition options.
	ErrDecompConfig = decomp.ErrBadConfig
	// ErrCoordination means the dual-price loop could not produce a plan.
	ErrCoordination = decomp.ErrCoordination
)

// NewPartition shards the instance's locations along the connected
// components of its support graph, splitting components larger than
// maxShardSize (0 = unbounded) with a breadth-first sweep.
func NewPartition(inst *Instance, maxShardSize int) (*Partition, error) {
	return decomp.NewPartition(inst, maxShardSize)
}

// NewDecompController builds the partition, the per-shard solver and the
// MPC wrapper for the instance. Instances below DecompOptions.BypassBelow
// locations delegate to a plain Controller.
func NewDecompController(inst *Instance, horizon int, opt DecompOptions, opts ...DecompControllerOption) (*DecompController, error) {
	return decomp.NewController(inst, horizon, opt, opts...)
}

// DecompWithLabel overrides the policy name the controller reports.
func DecompWithLabel(label string) DecompControllerOption { return decomp.WithLabel(label) }

// DecompWithInitialState sets the starting allocation (default zeros).
func DecompWithInitialState(s State) DecompControllerOption { return decomp.WithInitialState(s) }

// GenerateContinental builds a deterministic continental-scale network:
// DC sites on a reach-scaled jittered grid, every location within the
// latency reach of an anchor DC.
func GenerateContinental(cfg ContinentalConfig) (*ContinentalNetwork, error) {
	return topology.GenerateContinental(cfg)
}

// NewContinentalScenario generates a continental topology and converts it
// into a ready-to-solve benchmark instance with per-catchment capacities.
func NewContinentalScenario(cfg ContinentalScenarioConfig) (*ContinentalScenario, error) {
	return decomp.NewScenario(cfg)
}

// RunDecompScaling measures the shard-scaling curve for the given cases.
func RunDecompScaling(ctx context.Context, cases []ScalingCase) ([]ScalingRecord, error) {
	return decomp.RunScaling(ctx, cases)
}

// DefaultScalingCases returns the standard BENCH_4 case list; full adds
// the continental n≥1000 sizes to the CI smoke set.
func DefaultScalingCases(full bool) []ScalingCase {
	return decomp.DefaultScalingCases(full)
}
